"""DBCH-tree — Distance Based Covering with Convex Hull (paper Secs. 5.2, 5.3).

Instead of axis-aligned MBRs over APCA-style feature points, every node is
covered by the *pair of representations with the maximum pairwise distance*
among its members (the "convex hull" ``(u, l)``); the pair's distance is the
node's volume.  All geometry — branch picking, node splitting, query-to-node
distances — runs on the representation-level distance (Dist_PAR for the
adaptive methods), which removes the MBR overlap problem for homogeneous
adaptive-length representations.

Distance of a query to a node (paper Sec. 5.3): zero when the query sits
within the hull (both hull distances below the volume); otherwise the excess
of the smaller hull distance over the volume.  As the paper notes, internal
nodes do not guarantee the lower-bounding lemma — the k-NN engine treats
node distances as navigation hints and verifies candidates on raw data.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from .. import obs
from .entries import Entry

__all__ = ["DBCHTree", "DBCHNode"]

PairwiseDistance = Callable[[object, object], float]


class DBCHNode:
    """One DBCH-tree node: members plus the covering hull ``(u, l)``."""

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: "List[Entry]" = []
        self.children: "List[DBCHNode]" = []
        self.parent: Optional["DBCHNode"] = None
        self.hull: "tuple[object, object] | None" = None  # (u, l) representations
        self.volume: float = 0.0

    def items(self) -> list:
        """The node's members: entries for leaves, children otherwise."""
        return self.entries if self.is_leaf else self.children

    def member_representations(self) -> list:
        """Representations this node's hull must cover.

        For leaves: every entry.  For internal nodes: only the children's
        hull members (the paper's economy for internal nodes).
        """
        if self.is_leaf:
            return [e.representation for e in self.entries]
        reps = []
        for child in self.children:
            if child.hull is not None:
                reps.extend(child.hull)
        return reps

    def recompute_hull(self, distance: PairwiseDistance, accel=None) -> None:
        """Recompute the covering pair ``(u, l)`` and its volume.

        With a metric :class:`repro.distance.PairwiseAccel` the max-scan
        first measures the anchor row ``d(reps[0], reps[j])`` — exactly the
        baseline scan's ``i == 0`` pairs — then skips any later pair whose
        triangle upper bound ``d0[i] + d0[j]`` certainly cannot exceed the
        running maximum.  The replace rule is strict ``>``, so skipping
        certainly-not-above pairs leaves the winning pair (ties included)
        identical to the full scan.
        """
        obs.count("dbch.hull_recomputations")
        reps = self.member_representations()
        if len(reps) == 1:
            self.hull = (reps[0], reps[0])
            self.volume = 0.0
            return
        best, pair = -1.0, (reps[0], reps[0])
        if accel is not None and accel.metric and len(reps) > 2:
            d0 = [0.0] * len(reps)
            for j in range(1, len(reps)):
                d = distance(reps[0], reps[j])
                d0[j] = d
                if d > best:
                    best, pair = d, (reps[0], reps[j])
            skipped = 0
            for i in range(1, len(reps)):
                for j in range(i + 1, len(reps)):
                    if accel.certainly_not_above(d0[i] + d0[j], best):
                        skipped += 1
                        continue
                    d = distance(reps[i], reps[j])
                    if d > best:
                        best, pair = d, (reps[i], reps[j])
            if skipped and obs.is_enabled():
                obs.count("cascade.pairwise_skipped", skipped)
        else:
            for i in range(len(reps)):
                for j in range(i + 1, len(reps)):
                    d = distance(reps[i], reps[j])
                    if d > best:
                        best, pair = d, (reps[i], reps[j])
        self.hull = pair
        self.volume = max(best, 0.0)


class DBCHTree:
    """Distance-based covering tree with the same fill factors as the R-tree."""

    def __init__(
        self,
        distance: PairwiseDistance,
        max_entries: int = 5,
        min_entries: int = 2,
        accel=None,
    ):
        if not 1 <= min_entries <= max_entries // 2 + 1:
            raise ValueError("min_entries must be at most about half of max_entries")
        self.distance = distance
        self.max_entries = max_entries
        self.min_entries = min_entries
        #: optional :class:`repro.distance.PairwiseAccel` — norm lower bounds
        #: (and, for metric modes, triangle upper bounds) that let the build
        #: skip pairwise evaluations whose outcome is already forced; the
        #: resulting tree is identical to the unaccelerated one.
        self.accel = accel
        self.root = DBCHNode(is_leaf=True)
        self.size = 0
        #: build-path distance memo: every insert recomputes its leaf's (and
        #: ancestors') hulls, re-evaluating almost exclusively pairs already
        #: measured on the previous insert.  Values are cached per object
        #: pair (strong references pin the ids), so maintenance replays the
        #: exact float — the tree is bit-identical to the uncached one.  The
        #: query path (:meth:`node_distance`) stays uncached: query
        #: representations are transient and would only grow the memo.
        self._memo: "dict[tuple[int, int], tuple[object, object, float]]" = {}

    _MEMO_LIMIT = 1 << 20  # crude bound; clearing only costs recomputation

    def _dist(self, rep_a, rep_b) -> float:
        key = (id(rep_a), id(rep_b))
        hit = self._memo.get(key)
        if hit is not None and hit[0] is rep_a and hit[1] is rep_b:
            return hit[2]
        d = self.distance(rep_a, rep_b)
        if len(self._memo) >= self._MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = (rep_a, rep_b, d)
        return d

    # ------------------------------------------------------------------
    # insertion (branch picking = minimum distance increase)
    # ------------------------------------------------------------------
    def insert(self, entry: Entry) -> None:
        """Insert one entry, growing hulls and splitting on overflow."""
        obs.count("dbch.inserts")
        leaf = self._choose_leaf(self.root, entry.representation)
        leaf.entries.append(entry)
        self._adjust_upwards(leaf)
        self.size += 1

    def _hull_increase(self, node: DBCHNode, representation) -> float:
        if node.hull is None:
            return 0.0
        u, l = node.hull
        reach = max(self._dist(representation, u), self._dist(representation, l))
        return max(0.0, reach - node.volume)

    def _choose_leaf(self, node: DBCHNode, representation) -> DBCHNode:
        """Descend to the leaf with minimal ``(hull increase, volume)`` key.

        The accelerated path skips a child when a certain lower bound on its
        hull increase already exceeds the current best increase — such a
        child cannot win regardless of its volume tie-break.  Replacement
        stays strict ``<``, preserving ``min()``'s first-minimum tie rule.
        """
        accel = self.accel
        while not node.is_leaf:
            best_key = None
            best_child = None
            skipped = 0
            for child in node.children:
                if accel is not None and best_key is not None and child.hull is not None:
                    u, l = child.hull
                    reach_low = max(
                        accel.lower(representation, u), accel.lower(representation, l)
                    )
                    if max(0.0, reach_low - child.volume) > best_key[0]:
                        skipped += 2  # both hull-member distance calls avoided
                        continue
                key = (self._hull_increase(child, representation), child.volume)
                if best_key is None or key < best_key:
                    best_key, best_child = key, child
            if skipped and obs.is_enabled():
                obs.count("cascade.pairwise_skipped", skipped)
            node = best_child
        return node

    def _adjust_upwards(self, node: DBCHNode) -> None:
        while node is not None:
            if len(node.items()) > self.max_entries:
                self._split(node)
                return
            node.recompute_hull(self._dist, self.accel)
            node = node.parent

    # ------------------------------------------------------------------
    # deletion (condense + hull recomputation)
    # ------------------------------------------------------------------
    def delete(self, series_id: int) -> bool:
        """Remove the entry with ``series_id``; returns whether it was found."""
        found = self._find_leaf(self.root, series_id)
        if found is None:
            return False
        leaf, entry = found
        leaf.entries.remove(entry)
        self.size -= 1
        obs.count("dbch.deletes")
        self._condense(leaf)
        return True

    def _find_leaf(self, node: DBCHNode, series_id: int):
        if node.is_leaf:
            for entry in node.entries:
                if entry.series_id == series_id:
                    return node, entry
            return None
        for child in node.children:
            found = self._find_leaf(child, series_id)
            if found is not None:
                return found
        return None

    def _condense(self, node: DBCHNode) -> None:
        orphans: "List[Entry]" = []
        while node.parent is not None:
            parent = node.parent
            if len(node.items()) < self.min_entries:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                node.recompute_hull(self._dist, self.accel)
            node = parent
        if node.items():
            node.recompute_hull(self._dist, self.accel)
        if not node.is_leaf and len(node.children) == 1:
            self.root = node.children[0]
            self.root.parent = None
        elif not node.is_leaf and not node.children:
            self.root = DBCHNode(is_leaf=True)
        for orphan in orphans:
            self.size -= 1  # insert() re-increments
            self.insert(orphan)

    @staticmethod
    def _collect_entries(node: DBCHNode) -> "List[Entry]":
        out: "List[Entry]" = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.entries)
            else:
                stack.extend(current.children)
        return out

    # ------------------------------------------------------------------
    # node splitting (seeds = maximum pairwise distance; paper Sec. 5.3)
    # ------------------------------------------------------------------
    def _split(self, node: DBCHNode) -> None:
        obs.count("dbch.splits")
        items = node.items()
        reps = [
            item.representation if node.is_leaf else _node_anchor(item) for item in items
        ]
        seed_a, seed_b = self._pick_seeds(reps)
        groups = ([items[seed_a]], [items[seed_b]])
        anchors = (reps[seed_a], reps[seed_b])
        rest = [i for i in range(len(items)) if i not in (seed_a, seed_b)]
        for i in rest:
            remaining = len(rest) - (len(groups[0]) + len(groups[1]) - 2)
            if len(groups[0]) + remaining <= self.min_entries:
                target = 0
            elif len(groups[1]) + remaining <= self.min_entries:
                target = 1
            else:
                d0 = self._dist(reps[i], anchors[0])
                d1 = self._dist(reps[i], anchors[1])
                target = int(d1 < d0)
            groups[target].append(items[i])

        sibling = DBCHNode(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries, sibling.entries = groups
        else:
            node.children, sibling.children = groups
            for child in sibling.children:
                child.parent = sibling
            for child in node.children:
                child.parent = node
        node.recompute_hull(self._dist, self.accel)
        sibling.recompute_hull(self.distance, self.accel)

        if node.parent is None:
            new_root = DBCHNode(is_leaf=False)
            new_root.children = [node, sibling]
            node.parent = sibling.parent = new_root
            new_root.recompute_hull(self._dist, self.accel)
            self.root = new_root
        else:
            parent = node.parent
            sibling.parent = parent
            parent.children.append(sibling)
            self._adjust_upwards(parent)

    def _pick_seeds(self, reps: list) -> "tuple[int, int]":
        accel = self.accel
        worst, pair = -1.0, (0, 1)
        if accel is not None and accel.metric and len(reps) > 2:
            # same anchor-row + triangle-upper-bound scheme as recompute_hull
            d0 = [0.0] * len(reps)
            for j in range(1, len(reps)):
                d = self._dist(reps[0], reps[j])
                d0[j] = d
                if d > worst:
                    worst, pair = d, (0, j)
            skipped = 0
            for i in range(1, len(reps)):
                for j in range(i + 1, len(reps)):
                    if accel.certainly_not_above(d0[i] + d0[j], worst):
                        skipped += 1
                        continue
                    d = self._dist(reps[i], reps[j])
                    if d > worst:
                        worst, pair = d, (i, j)
            if skipped and obs.is_enabled():
                obs.count("cascade.pairwise_skipped", skipped)
            return pair
        for i in range(len(reps)):
            for j in range(i + 1, len(reps)):
                d = self._dist(reps[i], reps[j])
                if d > worst:
                    worst, pair = d, (i, j)
        return pair

    # ------------------------------------------------------------------
    # search support
    # ------------------------------------------------------------------
    def node_distance(self, query_representation, node: DBCHNode) -> float:
        """Dist(q, DBCH) of paper Sec. 5.3."""
        if node.hull is None:
            return 0.0
        u, l = node.hull
        du = self.distance(query_representation, u)
        dl = self.distance(query_representation, l)
        if du <= node.volume and dl <= node.volume:
            return 0.0
        return max(0.0, min(du, dl) - node.volume)

    # ------------------------------------------------------------------
    # statistics (paper Figs. 15, 16)
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[DBCHNode]:
        """Depth-first iteration over every node."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    @property
    def height(self) -> int:
        height, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_counts(self) -> "dict[str, int]":
        """Internal / leaf / total node counts (paper Figs. 15, 16)."""
        internal = leaf = 0
        for node in self.iter_nodes():
            if node.is_leaf:
                leaf += 1
            else:
                internal += 1
        return {"internal": internal, "leaf": leaf, "total": internal + leaf}

    def __len__(self) -> int:
        return self.size


def _node_anchor(node: DBCHNode):
    """A representative representation for an internal child (hull member)."""
    if node.hull is None:
        raise ValueError("child node has no hull")
    return node.hull[0]
