"""R-tree (Guttman 1984) over representation feature points.

The paper's baseline index: insertion picks the subtree whose MBR needs the
least enlargement, overflowing nodes split with the quadratic seed method,
and k-NN navigation orders subtrees by weighted MINDIST from the query's
feature point to each node's box.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from .. import obs
from .entries import Entry
from .mbr import Box

__all__ = ["RTree", "RTreeNode"]


class RTreeNode:
    """One R-tree node holding either entries (leaf) or child nodes."""

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: "List[Entry]" = []
        self.children: "List[RTreeNode]" = []
        self.box: Optional[Box] = None
        self.parent: Optional["RTreeNode"] = None

    def items(self) -> list:
        """The node's members: entries for leaves, children otherwise."""
        return self.entries if self.is_leaf else self.children

    def recompute_box(self) -> None:
        """Recompute the MBR from the current members."""
        obs.count("rtree.mbr_recomputations")
        boxes = (
            [Box.of_point(e.feature) for e in self.entries]
            if self.is_leaf
            else [c.box for c in self.children]
        )
        box = boxes[0].copy()
        for other in boxes[1:]:
            box.extend(other)
        self.box = box


def _item_box(item) -> Box:
    return Box.of_point(item.feature) if isinstance(item, Entry) else item.box


class RTree:
    """A Guttman R-tree with configurable fill factors (paper uses 2..5).

    ``split`` selects the overflow strategy: ``'quadratic'`` (default, the
    paper's setting) seeds groups with the most wasteful pair; ``'linear'``
    seeds with the pair of greatest normalised separation along one
    dimension — cheaper, usually slightly worse grouping.
    """

    def __init__(self, max_entries: int = 5, min_entries: int = 2, split: str = "quadratic"):
        if not 1 <= min_entries <= max_entries // 2 + 1:
            raise ValueError("min_entries must be at most about half of max_entries")
        if split not in ("quadratic", "linear"):
            raise ValueError(f"unknown split strategy: {split!r}")
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.split_strategy = split
        self.root = RTreeNode(is_leaf=True)
        self.size = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, entry: Entry) -> None:
        """Insert one entry, splitting overflowing nodes on the way up."""
        if entry.feature is None:
            raise ValueError("R-tree entries need a feature vector")
        obs.count("rtree.inserts")
        leaf = self._choose_leaf(self.root, Box.of_point(entry.feature))
        leaf.entries.append(entry)
        self._adjust_upwards(leaf)
        self.size += 1

    def _choose_leaf(self, node: RTreeNode, box: Box) -> RTreeNode:
        while not node.is_leaf:
            node = min(
                node.children,
                key=lambda child: (child.box.enlargement(box), child.box.margin),
            )
        return node

    def _adjust_upwards(self, node: RTreeNode) -> None:
        while node is not None:
            if len(node.items()) > self.max_entries:
                self._split(node)
                # _split re-links everything and fixes boxes up to the root
                return
            node.recompute_box()
            node = node.parent

    def _split(self, node: RTreeNode) -> None:
        """Quadratic split: the most wasteful pair seeds the two groups."""
        obs.count("rtree.splits")
        items = node.items()
        boxes = [_item_box(item) for item in items]
        if self.split_strategy == "linear":
            seed_a, seed_b = self._pick_seeds_linear(boxes)
        else:
            seed_a, seed_b = self._pick_seeds(boxes)
        groups = ([items[seed_a]], [items[seed_b]])
        group_boxes = [boxes[seed_a].copy(), boxes[seed_b].copy()]
        rest = [i for i in range(len(items)) if i not in (seed_a, seed_b)]
        for i in rest:
            remaining = len(rest) - (len(groups[0]) + len(groups[1]) - 2)
            # honour the minimum fill
            if len(groups[0]) + remaining <= self.min_entries:
                target = 0
            elif len(groups[1]) + remaining <= self.min_entries:
                target = 1
            else:
                enlargements = [group_boxes[g].enlargement(boxes[i]) for g in (0, 1)]
                target = int(enlargements[1] < enlargements[0])
            groups[target].append(items[i])
            group_boxes[target].extend(boxes[i])

        sibling = RTreeNode(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries, sibling.entries = groups
        else:
            node.children, sibling.children = groups
            for child in sibling.children:
                child.parent = sibling
            for child in node.children:
                child.parent = node
        node.recompute_box()
        sibling.recompute_box()

        if node.parent is None:
            new_root = RTreeNode(is_leaf=False)
            new_root.children = [node, sibling]
            node.parent = sibling.parent = new_root
            new_root.recompute_box()
            self.root = new_root
        else:
            parent = node.parent
            sibling.parent = parent
            parent.children.append(sibling)
            self._adjust_upwards(parent)

    # ------------------------------------------------------------------
    # deletion (Guttman's condense-tree)
    # ------------------------------------------------------------------
    def delete(self, series_id: int) -> bool:
        """Remove the entry with ``series_id``; returns whether it was found.

        Underflowing nodes are dissolved and their remaining members
        re-inserted (Guttman's CondenseTree), so the fill invariants keep
        holding for every surviving node.
        """
        found = self._find_leaf(self.root, series_id)
        if found is None:
            return False
        leaf, entry = found
        leaf.entries.remove(entry)
        self.size -= 1
        obs.count("rtree.deletes")
        self._condense(leaf)
        return True

    def _find_leaf(self, node: RTreeNode, series_id: int):
        if node.is_leaf:
            for entry in node.entries:
                if entry.series_id == series_id:
                    return node, entry
            return None
        for child in node.children:
            found = self._find_leaf(child, series_id)
            if found is not None:
                return found
        return None

    def _condense(self, node: RTreeNode) -> None:
        orphans: "List[Entry]" = []
        while node.parent is not None:
            parent = node.parent
            if len(node.items()) < self.min_entries:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                node.recompute_box()
            node = parent
        # the root: shrink if a single internal child remains
        if node.items():
            node.recompute_box()
        if not node.is_leaf and len(node.children) == 1:
            self.root = node.children[0]
            self.root.parent = None
        elif not node.is_leaf and not node.children:
            self.root = RTreeNode(is_leaf=True)
        for orphan in orphans:
            self.size -= 1  # insert() re-increments
            self.insert(orphan)

    @staticmethod
    def _collect_entries(node: RTreeNode) -> "List[Entry]":
        out: "List[Entry]" = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.entries)
            else:
                stack.extend(current.children)
        return out

    @staticmethod
    def _pick_seeds_linear(boxes: "List[Box]") -> "tuple[int, int]":
        """Guttman's linear pick-seeds: greatest normalised separation."""
        dims = boxes[0].mins.shape[0]
        all_mins = np.stack([b.mins for b in boxes])
        all_maxs = np.stack([b.maxs for b in boxes])
        best_sep, pair = -np.inf, (0, 1)
        for d in range(dims):
            lowest_high = int(np.argmin(all_maxs[:, d]))
            highest_low = int(np.argmax(all_mins[:, d]))
            if lowest_high == highest_low:
                continue
            width = float(all_maxs[:, d].max() - all_mins[:, d].min())
            if width <= 0:
                continue
            separation = (all_mins[highest_low, d] - all_maxs[lowest_high, d]) / width
            if separation > best_sep:
                best_sep, pair = separation, (lowest_high, highest_low)
        return pair

    @staticmethod
    def _pick_seeds(boxes: "List[Box]") -> "tuple[int, int]":
        worst, pair = -np.inf, (0, 1)
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                waste = boxes[i].union(boxes[j]).margin - boxes[i].margin - boxes[j].margin
                if waste > worst:
                    worst, pair = waste, (i, j)
        return pair

    # ------------------------------------------------------------------
    # search support
    # ------------------------------------------------------------------
    def node_distance(self, query_feature: np.ndarray, weights: np.ndarray, node: RTreeNode) -> float:
        """Weighted MINDIST from the query feature to a node's box."""
        return node.box.min_dist(query_feature, weights)

    # ------------------------------------------------------------------
    # statistics (paper Figs. 15, 16)
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[RTreeNode]:
        """Depth-first iteration over every node."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    @property
    def height(self) -> int:
        height, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_counts(self) -> "dict[str, int]":
        """Internal / leaf / total node counts (paper Figs. 15, 16)."""
        internal = leaf = 0
        for node in self.iter_nodes():
            if node.is_leaf:
                leaf += 1
            else:
                internal += 1
        return {"internal": internal, "leaf": leaf, "total": internal + leaf}

    def __len__(self) -> int:
        return self.size
