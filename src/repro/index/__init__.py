"""Index structures (R-tree, DBCH-tree) and GEMINI k-NN search."""

from .bulk import bulk_load_dbch, bulk_load_rtree
from .dbch import DBCHNode, DBCHTree
from .entries import Entry
from .isax import ISAXIndex
from .knn import KNNResult, SeriesDatabase, linear_scan
from .mbr import Box, feature_vector, feature_weights
from .pla_mbr import PLABox, pla_feature, pla_mbr_mindist
from .rtree import RTree, RTreeNode
from .stats import dbch_overlap, leaf_fill, rtree_overlap

__all__ = [
    "Entry",
    "Box",
    "feature_vector",
    "feature_weights",
    "RTree",
    "RTreeNode",
    "DBCHTree",
    "DBCHNode",
    "KNNResult",
    "SeriesDatabase",
    "linear_scan",
    "bulk_load_rtree",
    "bulk_load_dbch",
    "rtree_overlap",
    "dbch_overlap",
    "leaf_fill",
    "ISAXIndex",
    "PLABox",
    "pla_feature",
    "pla_mbr_mindist",
]
