"""iSAX — the indexable Symbolic Aggregate approXimation tree.

The paper's related work (Camerra et al., iSAX2+) indexes billions of series
with variable-cardinality SAX words; this module implements the classic
iSAX tree as a native index for symbolic representations, complementing the
R-tree/DBCH structures.

Key property exploited: Gaussian breakpoints at the quantiles ``i / 2^b``
are *nested* across power-of-two cardinalities, so a symbol at ``b`` bits is
exactly the first ``b`` bits of the symbol at any higher precision.  A node
refines one dimension by one bit when it splits; descendants share the
parent's word prefix.

Search follows GEMINI: best-first over nodes ordered by MINDIST_iSAX (a true
lower bound of the Euclidean distance for z-normalised series), PAA-distance
filtering at the leaves, raw verification on top.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.stats import norm

from ..distance.euclidean import euclidean
from ..index.knn import KNNResult
from ..reduction.base import equal_length_bounds

__all__ = ["ISAXIndex"]


def _breakpoints(bits: int) -> np.ndarray:
    """The ``2^bits - 1`` nested Gaussian breakpoints for this cardinality."""
    cells = 1 << bits
    return norm.ppf(np.arange(1, cells) / cells)


@dataclass(frozen=True)
class _Word:
    """An iSAX word: per-dimension symbols at per-dimension bit depths."""

    symbols: Tuple[int, ...]
    bits: Tuple[int, ...]

    def matches(self, full_symbols: np.ndarray, max_bits: int) -> bool:
        """Whether a full-precision symbol vector falls under this word."""
        for sym, b, full in zip(self.symbols, self.bits, full_symbols):
            if (int(full) >> (max_bits - b)) != sym:
                return False
        return True

    def refined(self, dim: int, bit: int) -> "_Word":
        """The child word with dimension ``dim`` refined by one more bit."""
        symbols = list(self.symbols)
        bits = list(self.bits)
        symbols[dim] = (symbols[dim] << 1) | bit
        bits[dim] += 1
        return _Word(tuple(symbols), tuple(bits))


class _Node:
    def __init__(self, word: _Word):
        self.word = word
        self.is_leaf = True
        self.entries: "List[tuple[int, np.ndarray, np.ndarray]]" = []  # (id, paa, full_syms)
        self.children: "Dict[_Word, _Node]" = {}


class ISAXIndex:
    """An iSAX tree over equal-length, z-normalised time series.

    Args:
        n_segments: PAA word length (dimensions of the SAX word).
        base_bits: cardinality (in bits) of the root's children.
        max_bits: full precision; also the refinement ceiling.
        leaf_capacity: entries a leaf holds before splitting.
    """

    def __init__(
        self,
        n_segments: int = 8,
        base_bits: int = 1,
        max_bits: int = 8,
        leaf_capacity: int = 10,
    ):
        if not 1 <= base_bits <= max_bits:
            raise ValueError("need 1 <= base_bits <= max_bits")
        if n_segments < 1 or leaf_capacity < 2:
            raise ValueError("invalid iSAX parameters")
        self.n_segments = n_segments
        self.base_bits = base_bits
        self.max_bits = max_bits
        self.leaf_capacity = leaf_capacity
        self._full_breakpoints = _breakpoints(max_bits)
        self._roots: "Dict[_Word, _Node]" = {}
        self.data: Optional[np.ndarray] = None
        self._bounds = None
        self.size = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def ingest(self, data: np.ndarray) -> None:
        """Index every row of ``data`` (shape ``(count, n)``)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("ingest expects a (count, n) array of series")
        self.data = data
        self._bounds = equal_length_bounds(data.shape[1], self.n_segments)
        for series_id, series in enumerate(data):
            self._insert(series_id, series)

    def _paa(self, series: np.ndarray) -> np.ndarray:
        return np.array([series[s : e + 1].mean() for s, e in self._bounds])

    def _full_symbols(self, paa: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._full_breakpoints, paa)

    def _insert(self, series_id: int, series: np.ndarray) -> None:
        paa = self._paa(series)
        full = self._full_symbols(paa)
        root_word = _Word(
            symbols=tuple(int(s) >> (self.max_bits - self.base_bits) for s in full),
            bits=(self.base_bits,) * self.n_segments,
        )
        node = self._roots.setdefault(root_word, _Node(root_word))
        while not node.is_leaf:
            child = self._matching_child(node, full)
            node = child
        node.entries.append((series_id, paa, full))
        self.size += 1
        if len(node.entries) > self.leaf_capacity:
            self._split(node)

    def _matching_child(self, node: _Node, full: np.ndarray) -> _Node:
        for word, child in node.children.items():
            if word.matches(full, self.max_bits):
                return child
        # the refined dimension's missing branch: create it lazily
        dim = self._split_dim_of(node)
        bit = (int(full[dim]) >> (self.max_bits - node.word.bits[dim] - 1)) & 1
        word = node.word.refined(dim, bit)
        child = _Node(word)
        node.children[word] = child
        return child

    def _split_dim_of(self, node: _Node) -> int:
        """The dimension an internal node refined (any child reveals it)."""
        child_word = next(iter(node.children))
        for dim, (a, b) in enumerate(zip(child_word.bits, node.word.bits)):
            if a != b:
                return dim
        raise RuntimeError("internal node without a refined dimension")

    def _split(self, node: _Node) -> None:
        """Refine the most balanced splittable dimension by one bit."""
        best_dim, best_balance = None, -1.0
        for dim in range(self.n_segments):
            bits = node.word.bits[dim]
            if bits >= self.max_bits:
                continue
            shift = self.max_bits - bits - 1
            ones = sum((int(full[dim]) >> shift) & 1 for _, _, full in node.entries)
            balance = min(ones, len(node.entries) - ones)
            if balance > best_balance:
                best_dim, best_balance = dim, balance
        if best_dim is None:
            return  # fully refined: the leaf simply grows (iSAX's overflow leaf)
        node.is_leaf = False
        entries, node.entries = node.entries, []
        shift = self.max_bits - node.word.bits[best_dim] - 1
        for bit in (0, 1):
            word = node.word.refined(best_dim, bit)
            node.children[word] = _Node(word)
        for entry in entries:
            bit = (int(entry[2][best_dim]) >> shift) & 1
            word = node.word.refined(best_dim, bit)
            child = node.children[word]
            child.entries.append(entry)
        # a degenerate split (all entries on one side) recurses on the full child
        for child in list(node.children.values()):
            if len(child.entries) > self.leaf_capacity:
                self._split(child)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _mindist_word(self, query_paa: np.ndarray, word: _Word) -> float:
        """MINDIST_iSAX: lower bound of Euclid(query, any series under word)."""
        total = 0.0
        for value, sym, bits, (s, e) in zip(query_paa, word.symbols, word.bits, self._bounds):
            breakpoints = _breakpoints(bits)
            lo = -np.inf if sym == 0 else breakpoints[sym - 1]
            hi = np.inf if sym == (1 << bits) - 1 else breakpoints[sym]
            if value < lo:
                gap = lo - value
            elif value > hi:
                gap = value - hi
            else:
                gap = 0.0
            total += (e - s + 1) * gap * gap
        return float(np.sqrt(total))

    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        """Exact-within-bound best-first k-NN (GEMINI over the iSAX tree)."""
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        query = np.asarray(query, dtype=float)
        query_paa = self._paa(query)
        counter = itertools.count()
        frontier: list = [
            (self._mindist_word(query_paa, word), next(counter), "node", node)
            for word, node in self._roots.items()
        ]
        heapq.heapify(frontier)
        best: "List[tuple[float, int]]" = []
        verified = 0
        while frontier:
            dist, _, kind, payload = heapq.heappop(frontier)
            if len(best) == k and dist >= -best[0][0]:
                break
            if kind == "entry":
                series_id = payload
                true = euclidean(query, self.data[series_id])
                verified += 1
                heapq.heappush(best, (-true, series_id))
                if len(best) > k:
                    heapq.heappop(best)
                continue
            node = payload
            if node.is_leaf:
                lengths = np.array([e - s + 1 for s, e in self._bounds], dtype=float)
                for series_id, paa, _ in node.entries:
                    bound = float(np.sqrt((lengths * (query_paa - paa) ** 2).sum()))
                    heapq.heappush(frontier, (bound, next(counter), "entry", series_id))
            else:
                for word, child in node.children.items():
                    heapq.heappush(
                        frontier,
                        (self._mindist_word(query_paa, word), next(counter), "node", child),
                    )
        ranked = sorted((-d, sid) for d, sid in best)
        return KNNResult(
            ids=[sid for _, sid in ranked],
            distances=[d for d, _ in ranked],
            n_verified=verified,
            n_total=self.size,
        )

    def approximate_search(self, query: np.ndarray) -> "List[int]":
        """iSAX's cheap approximate search: descend to the matching leaf."""
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        query = np.asarray(query, dtype=float)
        full = self._full_symbols(self._paa(query))
        root_word = _Word(
            symbols=tuple(int(s) >> (self.max_bits - self.base_bits) for s in full),
            bits=(self.base_bits,) * self.n_segments,
        )
        node = self._roots.get(root_word)
        if node is None:
            return []
        while not node.is_leaf:
            matched = None
            for word, child in node.children.items():
                if word.matches(full, self.max_bits):
                    matched = child
                    break
            if matched is None:
                break
            node = matched
        if node.is_leaf:
            return [series_id for series_id, _, _ in node.entries]
        # descended to an internal node without a matching branch: gather leaves
        ids: "List[int]" = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                ids.extend(series_id for series_id, _, _ in current.entries)
            else:
                stack.extend(current.children.values())
        return ids

    # ------------------------------------------------------------------
    def node_counts(self) -> "dict[str, int]":
        """Internal / leaf / total node counts."""
        internal = leaf = 0
        stack = list(self._roots.values())
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaf += 1
            else:
                internal += 1
                stack.extend(node.children.values())
        return {"internal": internal, "leaf": leaf, "total": internal + leaf}

    def __len__(self) -> int:
        return self.size
