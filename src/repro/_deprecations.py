"""Single-shot deprecation warnings for legacy entry points.

The public API accreted three generations of entry points (the free
``knn(...)`` function, direct ``QueryEngine`` construction, the
``save_database``/``load_database`` aliases).  They all keep working —
routed through the :mod:`repro.client` facade — but each warns exactly
once per process so a tight loop over a legacy call site does not flood
stderr.  Tests reset the memory with :func:`reset_warned`.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset_warned"]

#: keys that already warned this process (one key per legacy entry point)
_WARNED: "set[str]" = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` at most once per process."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_warned() -> None:
    """Forget which keys have warned (test isolation helper)."""
    _WARNED.clear()
