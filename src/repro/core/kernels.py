"""Vectorised prefix-statistics kernels shared by the SAPLA stages.

Every quantity SAPLA evaluates while iterating — window line fits, split
Reconstruction Areas, adjacent-pair merge areas, segment upper bounds — is
a closed-form expression over the prefix sums held by
:class:`repro.core.linefit.SeriesStats` (the ``SeriesPrefix`` sufficient
statistics: cumulative ``y``, ``t*y`` and ``y**2``).  The scalar modules
evaluate them one candidate at a time; the kernels here evaluate a whole
candidate set in a handful of numpy passes.

**Bit-identity contract.**  Each kernel replicates the exact floating-point
operation order of its scalar counterpart, elementwise: the same prefix
differences, the same normal-equation formula, the same trapezoid/triangle
branch of :func:`repro.core.areas.area_between_lines` selected by the same
predicate.  IEEE-754 arithmetic is deterministic per element, so a kernel's
lane ``i`` equals the scalar call for candidate ``i`` to the last bit — the
equivalence tests under ``tests/core`` assert exactly that, and the callers
(split-point scan, merge heap seeding, bound orderings) therefore make the
same decisions as the scalar loops, including on ties.
"""

from __future__ import annotations

import numpy as np

from .linefit import SeriesStats

__all__ = [
    "window_lines",
    "split_point_areas",
    "adjacent_pair_areas",
    "segment_bounds_vector",
]


def window_lines(
    stats: SeriesStats, starts: np.ndarray, ends: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised ``(a, b)`` of the least-squares fits over ``[starts, ends]``.

    The elementwise counterpart of ``stats.window_fit(s, e).coefficients``:
    prefix differences give ``sum_y`` / ``sum_ty``, then the normal-equation
    closed form — with the single-point convention ``(0.0, sum_y)`` — in the
    same operation order as :class:`repro.core.linefit.LineFit`.
    """
    prefix_y = stats._prefix_y
    prefix_ty = stats._prefix_ty
    starts = np.asarray(starts)
    ends = np.asarray(ends)
    sum_y = prefix_y[ends + 1] - prefix_y[starts]
    sum_ty = (prefix_ty[ends + 1] - prefix_ty[starts]) - starts * sum_y
    return line_coefficients(ends - starts + 1, sum_y, sum_ty)


def line_coefficients(
    lengths: np.ndarray, sum_y: np.ndarray, sum_ty: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """``LineFit.coefficients`` applied lanewise to sufficient statistics.

    ``l * (l-1)`` products stay exact in float64 far beyond any realistic
    series length, so the float moment sums equal the scalar path's
    int-arithmetic ones bit for bit.
    """
    lengths = np.asarray(lengths, dtype=float)
    s1 = lengths * (lengths - 1) / 2.0
    s2 = lengths * (lengths - 1) * (2 * lengths - 1) / 6.0
    det = lengths * s2 - s1 * s1
    single = lengths == 1
    safe_det = np.where(single, 1.0, det)
    a = np.where(single, 0.0, (lengths * sum_ty - s1 * sum_y) / safe_det)
    b = np.where(single, sum_y, (sum_y - a * s1) / lengths)
    return a, b


def roundtrip_coefficients(
    a: np.ndarray, b: np.ndarray, lengths: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Coefficients after a ``Segment.to_fit()`` round-trip, lanewise.

    ``merge_pair_area`` reads each side's line through
    ``LineFit.from_coefficients(a, b, l).coefficients``; the recovered
    statistics are not bitwise the stored ``(a, b)`` in general, so the
    round-trip must be replicated, not skipped.
    """
    lengths = np.asarray(lengths, dtype=float)
    s1 = lengths * (lengths - 1) / 2.0
    s2 = lengths * (lengths - 1) * (2 * lengths - 1) / 6.0
    sum_y = a * s1 + b * lengths
    sum_ty = a * s2 + b * s1
    return line_coefficients(lengths, sum_y, sum_ty)


def areas_between_lines(
    a1: np.ndarray,
    b1: np.ndarray,
    a2: np.ndarray,
    b2: np.ndarray,
    t1: np.ndarray,
) -> np.ndarray:
    """Vectorised :func:`repro.core.areas.area_between_lines` over ``[0, t1]``.

    Every caller integrates from ``t0 = 0``, which removes the ``da*t0``
    term; the trapezoid-vs-triangles branch is selected by the same
    predicate (``da == 0 or d0*d1 >= 0``) as the scalar code.
    """
    da = a1 - a2
    db = b1 - b2
    d0 = db
    d1 = da * t1 + db
    trapezoid = 0.5 * (np.abs(d0) + np.abs(d1)) * t1
    with np.errstate(divide="ignore", invalid="ignore"):
        t_cross = np.where(da != 0.0, -db / np.where(da != 0.0, da, 1.0), 0.0)
    triangles = 0.5 * np.abs(d0) * t_cross + 0.5 * np.abs(d1) * (t1 - t_cross)
    crossing = (da != 0.0) & (d0 * d1 < 0.0)
    area = np.where(crossing, triangles, trapezoid)
    return np.where(t1 == 0.0, 0.0, area)


def split_point_areas(stats: SeriesStats, segment) -> np.ndarray:
    """Reconstruction Areas of every split ``[start, t] + [t+1, end]``.

    One lane per candidate ``t in [start, end)`` — the vectorised body of
    ``find_split_point(mode='scan')``.  The whole segment's line is read
    through the same ``Segment.to_fit()`` round-trip of the *stored*
    ``(a, b)`` that the scalar path uses.
    """
    start, end = segment.start, segment.end
    candidates = np.arange(start, end)
    am, bm = roundtrip_coefficients(
        np.float64(segment.a), np.float64(segment.b), segment.length
    )
    al, bl = window_lines(stats, start, candidates)
    ar, br = window_lines(stats, candidates + 1, end)
    left_lengths = candidates - start + 1
    left_area = areas_between_lines(am, bm, al, bl, (left_lengths - 1).astype(float))
    offset = left_lengths.astype(float)
    right_area = areas_between_lines(
        am, am * offset + bm, ar, br, (end - candidates - 1).astype(float)
    )
    return left_area + right_area


def adjacent_pair_areas(stats: SeriesStats, segments) -> np.ndarray:
    """Merge Reconstruction Area of every adjacent segment pair, lanewise.

    The vectorised counterpart of calling
    :func:`repro.core.split_merge.merge_pair_area` on each consecutive pair:
    both sides' lines go through the ``to_fit()`` coefficient round-trip and
    the merged fit comes from the prefix sums.
    """
    starts = np.array([s.start for s in segments])
    ends = np.array([s.end for s in segments])
    a = np.array([s.a for s in segments], dtype=float)
    b = np.array([s.b for s in segments], dtype=float)
    lengths = ends - starts + 1
    ra, rb = roundtrip_coefficients(a, b, lengths)
    al, bl = ra[:-1], rb[:-1]
    ar, br = ra[1:], rb[1:]
    am, bm = window_lines(stats, starts[:-1], ends[1:])
    left_lengths = lengths[:-1]
    left_area = areas_between_lines(am, bm, al, bl, (left_lengths - 1).astype(float))
    offset = left_lengths.astype(float)
    right_area = areas_between_lines(
        am, am * offset + bm, ar, br, (lengths[1:] - 1).astype(float)
    )
    return left_area + right_area


def segment_bounds_vector(values: np.ndarray, segments) -> np.ndarray:
    """Vectorised :func:`repro.core.bounds.beta_segment` over a segment list.

    Samples the original-vs-reconstruction gap at each segment's start,
    midpoint and end, scaled by ``max(l - 1, 1)`` — the paper's
    free-standing bound, one lane per segment.
    """
    starts = np.array([s.start for s in segments])
    ends = np.array([s.end for s in segments])
    a = np.array([s.a for s in segments], dtype=float)
    b = np.array([s.b for s in segments], dtype=float)
    mids = (starts + ends) // 2
    m = np.zeros(len(segments))
    for t in (starts, mids, ends):
        gap = np.abs(values[t] - (a * (t - starts) + b))
        m = np.maximum(m, gap)
    return m * np.maximum(ends - starts, 1)
