"""SAPLA stage 1 — initialization (paper Algorithm 4.2).

One left-to-right scan of the series.  A growing segment absorbs the next
point unless the Increment Area (Definition 4.1) caused by that point exceeds
the current increment threshold — the ``(N-1)``-th largest Increment Area seen
so far, held in a size-``N-1`` min-heap.  Large increment areas mark places
where a single line stops describing the data, so they become segment
endpoints.  The scan yields between 1 and ``n/2`` segments; stage 2
(:mod:`repro.core.split_merge`) then reaches the user-specified ``N`` exactly.
"""

from __future__ import annotations

import heapq

import numpy as np

from .areas import increment_area
from .linefit import LineFit, SeriesStats
from .segment import Segment

__all__ = ["initialize", "initialize_fast"]


def initialize(stats: SeriesStats, n_segments: int) -> "list[Segment]":
    """Run the initialization scan and return the initial segment list.

    Args:
        stats: prefix-sum view of the series being reduced.
        n_segments: the user-specified target ``N`` (used only to size the
            increment-threshold heap; the returned count may differ).
    """
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    n = len(stats)
    if n == 0:
        raise ValueError("cannot reduce an empty series")
    if n <= 2:
        return [Segment.fit(stats, 0, n - 1)]

    segments: "list[Segment]" = []
    threshold_heap: "list[float]" = []  # the paper's eta: N-1 largest areas
    start = 0
    i = 2
    while i < n:
        # Both fits come from the prefix sums (not an incremental
        # extend_right) so the areas are bit-identical to the vectorised
        # `_vector_areas`; near-tied thresholds then split the same way in
        # `initialize` and `initialize_fast`.
        fit = stats.window_fit(start, i - 1)
        incremented = stats.window_fit(start, i)
        area = increment_area(fit, incremented)
        heap_not_full = len(threshold_heap) < n_segments - 1
        if heap_not_full or (threshold_heap and area > threshold_heap[0]):
            if heap_not_full:
                heapq.heappush(threshold_heap, area)
            else:
                heapq.heapreplace(threshold_heap, area)
            segments.append(_close(fit, start, i - 1))
            # the triggering point begins a fresh two-point segment
            start = i
            i += 2
        else:
            i += 1
    segments.append(_close(stats.window_fit(start, n - 1), start, n - 1))
    return segments


def _close(fit: LineFit, start: int, end: int) -> Segment:
    a, b = fit.coefficients
    return Segment(start=start, end=end, a=a, b=b)


# ----------------------------------------------------------------------
# vectorised variant
# ----------------------------------------------------------------------
def _window_lines(stats: SeriesStats, start: int, ends: np.ndarray):
    """Vectorised ``(a, b)`` of the fits over ``[start, e]`` for every e."""
    prefix_y = stats._prefix_y
    prefix_ty = stats._prefix_ty
    lengths = (ends - start + 1).astype(float)
    sum_y = prefix_y[ends + 1] - prefix_y[start]
    sum_ty = (prefix_ty[ends + 1] - prefix_ty[start]) - start * sum_y
    s1 = lengths * (lengths - 1) / 2.0
    s2 = lengths * (lengths - 1) * (2 * lengths - 1) / 6.0
    det = lengths * s2 - s1 * s1
    safe = np.where(det > 0, det, 1.0)
    a = np.where(det > 0, (lengths * sum_ty - s1 * sum_y) / safe, 0.0)
    b = (sum_y - a * s1) / lengths
    return a, b


def _vector_areas(stats: SeriesStats, start: int, candidates: np.ndarray) -> np.ndarray:
    """Increment Areas of extending the segment ``[start, j-1]`` by point ``j``,
    for every candidate ``j`` at once (the exact vectorised counterpart of
    :func:`repro.core.areas.increment_area`)."""
    a1, b1 = _window_lines(stats, start, candidates - 1)  # current fits
    a2, b2 = _window_lines(stats, start, candidates)  # incremented fits
    spans = (candidates - start).astype(float)  # integration upper limits
    da = a2 - a1
    db = b2 - b1
    d0 = db
    d1 = da * spans + db
    trapezoid = 0.5 * (np.abs(d0) + np.abs(d1)) * spans
    with np.errstate(divide="ignore", invalid="ignore"):
        t_cross = np.where(da != 0, -db / np.where(da != 0, da, 1.0), 0.0)
    triangles = 0.5 * np.abs(d0) * t_cross + 0.5 * np.abs(d1) * (spans - t_cross)
    crossing = (da != 0) & (d0 * d1 < 0)
    return np.where(crossing, triangles, trapezoid)


def initialize_fast(stats: SeriesStats, n_segments: int) -> "list[Segment]":
    """Vectorised :func:`initialize` — identical output, far fewer Python steps.

    Within one growing segment the increment threshold is constant (it only
    changes when a split fires), so the whole run of candidate points can be
    evaluated in one numpy pass and the first threshold crossing located
    with ``argmax`` — per segment, not per point.
    """
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    n = len(stats)
    if n == 0:
        raise ValueError("cannot reduce an empty series")
    if n <= 2 or n_segments == 1:
        # a threshold heap of capacity zero never admits a split
        return [Segment.fit(stats, 0, n - 1)]

    segments: "list[Segment]" = []
    threshold_heap: "list[float]" = []
    start = 0

    def split_at(j: int, area: float) -> int:
        """Close ``[start, j-1]``, register ``area``, start a fresh segment."""
        heap_not_full = len(threshold_heap) < n_segments - 1
        if heap_not_full:
            heapq.heappush(threshold_heap, area)
        else:
            heapq.heapreplace(threshold_heap, area)
        segments.append(Segment.fit(stats, start, j - 1))
        return j

    # chunks grow geometrically within a run: splits that fire quickly pay
    # for few wasted evaluations, long quiet runs amortise to O(n) total
    first_chunk, max_chunk = 16, 1024
    while True:
        if start >= n - 1:
            if start <= n - 1:
                segments.append(Segment.fit(stats, start, n - 1))
            break
        if len(threshold_heap) < n_segments - 1:
            # the heap fills greedily: the very first candidate splits
            j = start + 2
            if j >= n:
                segments.append(Segment.fit(stats, start, n - 1))
                break
            area = float(_vector_areas(stats, start, np.array([j]))[0])
            start = split_at(j, area)
            continue
        threshold = threshold_heap[0]
        cursor = start + 2
        chunk = first_chunk
        hit_j = -1
        hit_area = 0.0
        while cursor < n:
            candidates = np.arange(cursor, min(cursor + chunk, n))
            areas = _vector_areas(stats, start, candidates)
            above = areas > threshold
            if above.any():
                index = int(np.argmax(above))
                hit_j = int(candidates[index])
                hit_area = float(areas[index])
                break
            cursor += chunk
            chunk = min(chunk * 2, max_chunk)
        if hit_j < 0:
            segments.append(Segment.fit(stats, start, n - 1))
            break
        start = split_at(hit_j, hit_area)
    return segments
