"""SAPLA stage 2 — split & merge iteration (paper Algorithm 4.3).

Brings the initialized segmentation to exactly ``N`` segments and then keeps
trading a split of the worst segment against a merge of the cheapest adjacent
pair while the sum upper bound decreases:

* ``count > N``: repeatedly merge the adjacent pair with the *minimum*
  Reconstruction Area (Definition 4.2) — the pair a single line describes
  almost as well as two.
* ``count < N``: repeatedly split the segment with the *maximum* segment
  upper bound ``beta_i`` at the point maximising the Reconstruction Area.
* ``count == N``: alternate split+merge / merge+split probes; accept the
  better one while it reduces ``sum(beta_i)`` (the iteration threshold).

The merge-down phase uses a lazy min-heap over adjacent pairs so the worst
case (``n/2`` initial segments) stays ``O(n log n)`` as analysed in Sec. 4.5.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from .. import obs
from .areas import reconstruction_area
from .bounds import segment_bound
from .kernels import adjacent_pair_areas, segment_bounds_vector, split_point_areas
from .linefit import SeriesStats
from .segment import Segment

__all__ = ["split_merge", "find_split_point", "merge_pair_area"]


def _segment_bounds(values: np.ndarray, segments: "list[Segment]", mode: str) -> np.ndarray:
    """Per-segment bounds as one vector — the kernel for the paper bound,
    a scalar loop for the ``exact`` ablation (O(l) per segment either way)."""
    if mode == "paper":
        return segment_bounds_vector(values, segments)
    return np.array([segment_bound(values, seg, mode) for seg in segments])


def _adjacent_areas(stats: SeriesStats, segments: "list[Segment]") -> np.ndarray:
    """Merge Reconstruction Area of every adjacent pair in one kernel pass."""
    obs.count("sapla.area_evaluations", len(segments) - 1)
    return adjacent_pair_areas(stats, segments)


def merge_pair_area(stats: SeriesStats, left: Segment, right: Segment) -> float:
    """Reconstruction Area of merging two adjacent segments (Definition 4.2)."""
    obs.count("sapla.area_evaluations")
    merged = stats.window_fit(left.start, right.end)
    return reconstruction_area(left.to_fit(), right.to_fit(), merged)


def find_split_point(
    stats: SeriesStats, segment: Segment, mode: str = "scan"
) -> Optional[int]:
    """Best split point inside ``segment`` (paper Sec. 4.3.2).

    Returns the global index ``t`` that maximises the Reconstruction Area
    between the long segment and the split pair ``[start, t] + [t+1, end]``,
    i.e. the point where two lines gain the most over one.  ``None`` when the
    segment cannot be split (single point).

    ``mode='scan'`` evaluates every candidate exactly in O(l), which stays
    inside the stage's stated O(n) per-loop budget.  ``mode='peak'`` is the
    paper's technique (Fig. 7): probe the midpoints between the segment
    centre and its endpoints, then hill-climb from the best probe — O(log l)
    evaluations, possibly a local maximum.
    """
    if segment.length < 2:
        return None
    whole = segment.to_fit()

    def area_at(t: int) -> float:
        obs.count("sapla.area_evaluations")
        left = stats.window_fit(segment.start, t)
        right = stats.window_fit(t + 1, segment.end)
        return reconstruction_area(left, right, whole)

    if mode == "scan":
        # one kernel pass over every candidate; areas are non-negative and
        # np.argmax keeps the scalar loop's first-strict-maximum semantics
        areas = split_point_areas(stats, segment)
        obs.count("sapla.area_evaluations", areas.shape[0])
        return segment.start + int(np.argmax(areas))
    if mode == "peak":
        return _peak_split_point(segment, area_at)
    raise ValueError(f"unknown split-point mode: {mode!r}")


def _peak_split_point(segment: Segment, area_at) -> int:
    """Fig. 7's candidate probe + hill climb (O(log l) area evaluations)."""
    lo, hi = segment.start, segment.end - 1
    middle = (lo + hi) // 2
    candidates = {lo, (lo + middle) // 2, middle, (middle + hi + 1) // 2, hi}
    best_t = max(candidates, key=area_at)
    best_area = area_at(best_t)
    step = max(segment.length // 8, 1)
    while step >= 1:
        moved = False
        for t in (best_t - step, best_t + step):
            if lo <= t <= hi:
                area = area_at(t)
                if area > best_area:
                    best_t, best_area = t, area
                    moved = True
        if not moved:
            step //= 2
    return best_t


def _split(stats: SeriesStats, segment: Segment, t: int) -> "tuple[Segment, Segment]":
    return Segment.fit(stats, segment.start, t), Segment.fit(stats, t + 1, segment.end)


def _merge(stats: SeriesStats, left: Segment, right: Segment) -> Segment:
    return Segment.fit(stats, left.start, right.end)


def _merge_down(stats: SeriesStats, segments: "list[Segment]", target: int) -> "list[Segment]":
    """Merge the cheapest adjacent pairs until only ``target`` segments remain."""
    # doubly linked list over node ids with a lazy heap of pair areas
    nodes: "dict[int, Segment]" = dict(enumerate(segments))
    nxt = {i: i + 1 for i in range(len(segments) - 1)}
    prv = {i + 1: i for i in range(len(segments) - 1)}
    next_id = len(segments)
    # seed the heap from one adjacent-pair kernel pass; pop order only depends
    # on the (area, i, j) keys, so heapify matches the scalar push sequence
    heap: "list[tuple[float, int, int]]" = []
    if len(segments) > 1:
        areas = _adjacent_areas(stats, segments)
        heap = [(areas[i], i, i + 1) for i in range(len(segments) - 1)]
        heapq.heapify(heap)
    count = len(nodes)
    while count > target and heap:
        _, li, ri = heapq.heappop(heap)
        if li not in nodes or ri not in nodes or nxt.get(li) != ri:
            continue  # stale entry
        merged = _merge(stats, nodes[li], nodes[ri])
        obs.count("sapla.split_merge.merges")
        mid = next_id
        next_id += 1
        nodes[mid] = merged
        left_of = prv.get(li)
        right_of = nxt.get(ri)
        del nodes[li], nodes[ri]
        nxt.pop(li, None)
        prv.pop(ri, None)
        prv.pop(li, None)
        nxt.pop(ri, None)
        if left_of is not None:
            nxt[left_of] = mid
            prv[mid] = left_of
            heapq.heappush(
                heap, (merge_pair_area(stats, nodes[left_of], merged), left_of, mid)
            )
        if right_of is not None:
            nxt[mid] = right_of
            prv[right_of] = mid
            heapq.heappush(
                heap, (merge_pair_area(stats, merged, nodes[right_of]), mid, right_of)
            )
        count -= 1
    return sorted(nodes.values(), key=lambda s: s.start)


def _split_up(
    stats: SeriesStats,
    segments: "list[Segment]",
    target: int,
    bound_mode: str,
    split_mode: str = "scan",
) -> "list[Segment]":
    """Split the worst-bounded segment until ``target`` segments exist."""
    values = stats.values
    segments = list(segments)
    while len(segments) < target:
        bounds = _segment_bounds(values, segments, bound_mode)
        order = sorted(range(len(segments)), key=lambda i: bounds[i], reverse=True)
        for i in order:
            t = find_split_point(stats, segments[i], split_mode)
            if t is not None:
                left, right = _split(stats, segments[i], t)
                segments[i : i + 1] = [left, right]
                obs.count("sapla.split_merge.splits")
                break
        else:
            break  # every segment is a single point; cannot reach target
    return segments


def _total_bound(values: np.ndarray, segments: "list[Segment]", mode: str) -> float:
    # left-to-right Python sum over the kernel's lanes: the same sequential
    # additions as summing per-segment scalar calls
    return sum(_segment_bounds(values, segments, mode).tolist())


def _probe_split_then_merge(
    stats: SeriesStats,
    segments: "list[Segment]",
    bound_mode: str,
    split_mode: str = "scan",
) -> "Optional[list[Segment]]":
    """Split the worst segment, then merge the cheapest pair (back to N)."""
    values = stats.values
    bounds = _segment_bounds(values, segments, bound_mode)
    worst = max(range(len(segments)), key=lambda i: bounds[i])
    t = find_split_point(stats, segments[worst], split_mode)
    if t is None:
        return None
    expanded = list(segments)
    expanded[worst : worst + 1] = list(_split(stats, segments[worst], t))
    best_pair = int(np.argmin(_adjacent_areas(stats, expanded)))
    expanded[best_pair : best_pair + 2] = [
        _merge(stats, expanded[best_pair], expanded[best_pair + 1])
    ]
    return expanded


def _probe_merge_then_split(
    stats: SeriesStats,
    segments: "list[Segment]",
    bound_mode: str,
    split_mode: str = "scan",
) -> "Optional[list[Segment]]":
    """Merge the cheapest pair, then split the worst segment (back to N)."""
    if len(segments) < 2:
        return None
    values = stats.values
    best_pair = int(np.argmin(_adjacent_areas(stats, segments)))
    reduced = list(segments)
    reduced[best_pair : best_pair + 2] = [
        _merge(stats, segments[best_pair], segments[best_pair + 1])
    ]
    bounds = _segment_bounds(values, reduced, bound_mode)
    worst = max(range(len(reduced)), key=lambda i: bounds[i])
    t = find_split_point(stats, reduced[worst], split_mode)
    if t is None:
        return None
    reduced[worst : worst + 1] = list(_split(stats, reduced[worst], t))
    return reduced


def split_merge(
    stats: SeriesStats,
    segments: "list[Segment]",
    n_segments: int,
    bound_mode: str = "paper",
    max_rounds: Optional[int] = None,
    split_mode: str = "scan",
) -> "list[Segment]":
    """Run the full split & merge iteration (Algorithm 4.3)."""
    target = min(n_segments, len(stats))
    if len(segments) > target:
        segments = _merge_down(stats, segments, target)
    if len(segments) < target:
        segments = _split_up(stats, segments, target, bound_mode, split_mode)
    if len(segments) != target:
        return segments  # series too short to reach the target; nothing to refine

    values = stats.values
    rounds = max_rounds if max_rounds is not None else 2 * target
    total = _total_bound(values, segments, bound_mode)
    for _ in range(rounds):
        obs.count("sapla.split_merge.rounds")
        candidates = [
            probe(stats, segments, bound_mode, split_mode)
            for probe in (_probe_split_then_merge, _probe_merge_then_split)
        ]
        candidates = [c for c in candidates if c is not None]
        if not candidates:
            break
        best = min(candidates, key=lambda segs: _total_bound(values, segs, bound_mode))
        best_total = _total_bound(values, best, bound_mode)
        if best_total >= total - 1e-12:
            break
        segments, total = best, best_total
    return segments
