"""Increment Area and Reconstruction Area (paper Definitions 4.1 and 4.2).

Both quantities are areas between straight-line reconstructions, i.e.
integrals of ``|delta_a * t + delta_b|`` over an interval.  The paper
simplifies them to sums of triangles (Figs. 3, 4); the closed forms here are
the exact integrals, which coincide with the triangle decomposition because
two lines cross at most once (Lemma 4.1).
"""

from __future__ import annotations

from .linefit import LineFit

__all__ = ["area_between_lines", "increment_area", "reconstruction_area"]


def area_between_lines(a1: float, b1: float, a2: float, b2: float, t0: float, t1: float) -> float:
    """Integral of ``|(a1 - a2) t + (b1 - b2)|`` over ``[t0, t1]``.

    This is the exact area enclosed between the two lines on the interval.
    """
    if t1 < t0:
        raise ValueError("interval end must not precede its start")
    da = a1 - a2
    db = b1 - b2
    d0 = da * t0 + db
    d1 = da * t1 + db
    width = t1 - t0
    if width == 0.0:
        return 0.0
    if da == 0.0 or d0 * d1 >= 0.0:
        # no sign change: trapezoid
        return 0.5 * (abs(d0) + abs(d1)) * width
    # single crossing at t*: two triangles (paper Fig. 3)
    t_cross = -db / da
    return 0.5 * abs(d0) * (t_cross - t0) + 0.5 * abs(d1) * (t1 - t_cross)


def increment_area(current: LineFit, incremented: LineFit) -> float:
    """Increment Area (Definition 4.1).

    ``current`` is the fit of segment ``C_i`` (length ``l``); ``incremented``
    is the fit after appending one more point (length ``l + 1``).  The
    Extended Segment of Definition 4.1 is ``current``'s line evaluated over
    the longer domain, so the area is taken over local ``t in [0, l]``.
    """
    if incremented.length != current.length + 1:
        raise ValueError("incremented fit must cover exactly one extra point")
    a1, b1 = incremented.coefficients
    a2, b2 = current.coefficients
    return area_between_lines(a1, b1, a2, b2, 0.0, float(current.length))


def reconstruction_area(left: LineFit, right: LineFit, merged: LineFit) -> float:
    """Reconstruction Area (Definition 4.2).

    Area between the merged segment's reconstruction and the concatenation of
    the two sub-segment reconstructions, in the merged segment's local
    coordinates.  The right sub-segment starts at local ``t = left.length``.
    """
    if merged.length != left.length + right.length:
        raise ValueError("merged fit must cover both sub-segments")
    am, bm = merged.coefficients
    al, bl = left.coefficients
    ar, br = right.coefficients
    left_area = area_between_lines(am, bm, al, bl, 0.0, float(left.length - 1))
    # shift the merged line into the right segment's local frame
    offset = float(left.length)
    right_area = area_between_lines(am, am * offset + bm, ar, br, 0.0, float(right.length - 1))
    return left_area + right_area
