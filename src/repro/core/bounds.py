"""Segment upper bounds ``beta_i`` (paper Definition 3.5, Secs. 4.1.2-4.4.1).

SAPLA never scans a whole segment to measure its true max deviation
``epsilon_i`` while iterating — that would re-introduce APLA's cost.  Instead
it maintains O(1) *conditional* upper bounds built from a handful of endpoint
evaluations (Algorithm 4.1's ``get_max``) scaled by the segment length.  The
paper proves the bounding conditions in Theorems 4.2 / 4.3 and openly notes
(Sec. 7) that they are conditional, not unconditional; the bounds only steer
the iteration order and stopping rule, while all reported quality metrics use
the exact max deviation (:mod:`repro.metrics.deviation`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .linefit import LineFit
from .segment import Segment

__all__ = [
    "get_max",
    "beta_initialization",
    "beta_merge",
    "beta_split",
    "beta_segment",
    "segment_bound",
    "exact_max_deviation",
]


def get_max(ids: Iterable[int], *tracks: Sequence[float]) -> float:
    """Algorithm 4.1: max pairwise absolute difference at the given positions.

    ``ids`` are 1-based positions within the segment (the paper's ``[...]``
    ordering); each *track* is an indexable giving the value of one curve at
    those positions (already converted to 0-based by the caller convention
    here: we pass plain sequences indexed by ``id - 1``).
    """
    best = 0.0
    tracks = tuple(tracks)
    for k in ids:
        at_k = [track[k - 1] for track in tracks]
        for i in range(len(at_k)):
            for j in range(i + 1, len(at_k)):
                diff = abs(at_k[i] - at_k[j])
                if diff > best:
                    best = diff
    return best


def beta_initialization(
    c_first: float,
    c_last: float,
    c_new: float,
    current: LineFit,
    incremented: LineFit,
    running_max: float = 0.0,
) -> float:
    """Sec. 4.1.2: bound during the initialization scan.

    ``current`` covers ``l`` points, ``incremented`` covers ``l + 1``; the
    three tracked curves are the original points, the Increment Segment and
    the Extended Segment, sampled at local ids ``1``, ``l`` and ``l + 1``.
    ``running_max`` is the paper's ``max_d``, the running maximum observed
    while the segment grew.
    """
    l = current.length
    ids = (1, l, l + 1)
    original = {1: c_first, l: c_last, l + 1: c_new}
    m = 0.0
    for k in ids:
        t = float(k - 1)
        candidates = (original[k], incremented.value_at(t), current.value_at(t))
        for i in range(3):
            for j in range(i + 1, 3):
                m = max(m, abs(candidates[i] - candidates[j]))
    return max(m, running_max) * l


def beta_merge(
    values: np.ndarray,
    left: Segment,
    right: Segment,
    merged_fit: LineFit,
) -> float:
    """Sec. 4.1.4: bound for the long segment produced by a merge.

    Tracked curves: the original points, the concatenated reconstructions of
    the two short segments, and the merged reconstruction — sampled at local
    ids ``1``, ``l_i``, ``l_i + 1`` and ``l'`` (both sides of the junction and
    both outer endpoints).
    """
    start, mid, end = left.start, left.end, right.end
    l_total = end - start + 1
    m = 0.0
    for global_t, piece in ((start, left), (mid, left), (mid + 1, right), (end, right)):
        local_t = float(global_t - start)
        candidates = (
            float(values[global_t]),
            piece.value_at(global_t),
            merged_fit.value_at(local_t),
        )
        for i in range(3):
            for j in range(i + 1, 3):
                m = max(m, abs(candidates[i] - candidates[j]))
    return m * (l_total - 1)


def beta_split(
    values: np.ndarray,
    part: Segment,
    whole: Segment,
) -> float:
    """Sec. 4.3.1: bound for one half produced by splitting ``whole``.

    Tracked curves: the original points, the long segment's reconstruction
    and the new sub-segment's reconstruction, sampled at the sub-segment's
    two endpoints.
    """
    m = 0.0
    for global_t in (part.start, part.end):
        candidates = (
            float(values[global_t]),
            whole.value_at(global_t),
            part.value_at(global_t),
        )
        for i in range(3):
            for j in range(i + 1, 3):
                m = max(m, abs(candidates[i] - candidates[j]))
    return m * max(part.length - 1, 1)


def beta_segment(values: np.ndarray, segment: Segment) -> float:
    """Sec. 4.4.1: free-standing bound used during endpoint movement.

    Samples the original-vs-reconstruction gap at the segment's endpoints and
    midpoint, scaled by ``l - 1`` — the same construction as the
    initialization bound, applicable after any endpoint change.
    """
    mid = (segment.start + segment.end) // 2
    m = 0.0
    for global_t in (segment.start, mid, segment.end):
        m = max(m, abs(float(values[global_t]) - segment.value_at(global_t)))
    return m * max(segment.length - 1, 1)


def segment_bound(values: np.ndarray, segment: Segment, mode: str = "paper") -> float:
    """Dispatch between the paper's O(1) bound and the exact O(l) deviation.

    ``mode='paper'`` is the default SAPLA behaviour; ``mode='exact'`` is the
    ablation in which the iteration is steered by the true ``epsilon_i``.
    """
    if mode == "exact":
        return exact_max_deviation(values, segment)
    if mode == "paper":
        return beta_segment(values, segment)
    raise ValueError(f"unknown bound mode: {mode!r}")


def exact_max_deviation(values: np.ndarray, segment: Segment) -> float:
    """The true ``epsilon_i`` (Definition 3.4) — O(l), used by metrics and
    by SAPLA's optional ``bound_mode='exact'`` ablation."""
    window = np.asarray(values[segment.start : segment.end + 1], dtype=float)
    return float(np.abs(window - segment.reconstruct()).max())
