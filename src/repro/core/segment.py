"""Segment and segmentation containers shared by every segment-based method.

A :class:`Segment` is the paper's ``<a_i, b_i, r_i>`` triple (Definition 3.2)
augmented with its start index for convenience; a :class:`LinearSegmentation`
is the representation ``C-hat`` (an ordered, gap-free cover of ``[0, n)``).
APCA/PAA-style constant segments are the special case ``a == 0``, which lets
one distance/indexing stack serve every method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .linefit import LineFit, SeriesStats

__all__ = ["Segment", "LinearSegmentation"]


@dataclass(frozen=True)
class Segment:
    """One fitted segment: the paper's ``<a_i, b_i, r_i>`` plus its start index.

    ``a`` and ``b`` are in *local* coordinates: the reconstruction at global
    index ``t`` (``start <= t <= end``) is ``a * (t - start) + b``.
    """

    start: int
    end: int
    a: float
    b: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"segment end {self.end} precedes start {self.start}")

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def right_endpoint(self) -> int:
        """The paper's ``r_i``."""
        return self.end

    def value_at(self, t: int) -> float:
        """Reconstructed value at global index ``t``."""
        return self.a * (t - self.start) + self.b

    def reconstruct(self) -> np.ndarray:
        """Reconstructed values over the segment's own window."""
        return self.a * np.arange(self.length, dtype=float) + self.b

    def to_fit(self) -> LineFit:
        """The segment's line as a :class:`LineFit` (sufficient statistics)."""
        return LineFit.from_coefficients(self.a, self.b, self.length)

    def restrict(self, start: int, end: int) -> "Segment":
        """The same line over a sub-range — used by the Dist_PAR partitioning.

        Restricting a line to a sub-interval does not change the line, so the
        least-squares refit of Eqs. (5)-(8) reduces to an intercept shift.
        """
        if not self.start <= start <= end <= self.end:
            raise ValueError(f"[{start}, {end}] is not inside [{self.start}, {self.end}]")
        return Segment(start=start, end=end, a=self.a, b=self.a * (start - self.start) + self.b)

    @classmethod
    def fit(cls, stats: SeriesStats, start: int, end: int) -> "Segment":
        """Exact least-squares segment over ``[start, end]`` of a series."""
        a, b = stats.window_fit(start, end).coefficients
        return cls(start=start, end=end, a=a, b=b)


class LinearSegmentation:
    """An ordered, gap-free piecewise-linear representation of one series.

    This is the paper's ``C-hat = {<a_0, b_0, r_0>, ...}`` (Definition 3.2).
    Construction validates the cover: segments must tile ``[0, n)`` exactly.
    """

    def __init__(self, segments: Sequence[Segment]):
        segments = list(segments)
        if not segments:
            raise ValueError("a segmentation needs at least one segment")
        if segments[0].start != 0:
            raise ValueError("the first segment must start at index 0")
        for prev, cur in zip(segments, segments[1:]):
            if cur.start != prev.end + 1:
                raise ValueError(
                    f"segments must be contiguous: {prev.end} then {cur.start}"
                )
        self._segments = segments

    # ------------------------------------------------------------------
    @property
    def segments(self) -> "list[Segment]":
        return list(self._segments)

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def length(self) -> int:
        """Length ``n`` of the represented series."""
        return self._segments[-1].end + 1

    @property
    def right_endpoints(self) -> "list[int]":
        """The paper's ``C-hat_R``: every ``r_i``."""
        return [seg.end for seg in self._segments]

    @property
    def n_coefficients(self) -> int:
        """Stored coefficient count ``M = 3N`` (``a_i, b_i, r_i`` per segment)."""
        return 3 * len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __getitem__(self, i: int) -> Segment:
        return self._segments[i]

    # ------------------------------------------------------------------
    def reconstruct(self) -> np.ndarray:
        """The reconstructed series ``C-check`` (Definition 3.3)."""
        return np.concatenate([seg.reconstruct() for seg in self._segments])

    def value_at(self, t: int) -> float:
        """Reconstructed value at global position ``t``."""
        return self._segments[self.segment_index_at(t)].value_at(t)

    def segment_index_at(self, t: int) -> int:
        """Index of the segment covering global position ``t`` (binary search)."""
        if not 0 <= t < self.length:
            raise IndexError(f"position {t} out of range for length {self.length}")
        lo, hi = 0, len(self._segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._segments[mid].end < t:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def partition(self, endpoints: Iterable[int]) -> "LinearSegmentation":
        """Refine the segmentation so that every given endpoint is a boundary.

        Used by Dist_PAR (Definition 5.1): the union of two representations'
        right endpoints is imposed on both.  Line pieces are restrictions of
        the originals, so no information is lost.
        """
        wanted = sorted(set(endpoints) | set(self.right_endpoints))
        if wanted[-1] != self.length - 1:
            raise ValueError("partition endpoints must end at the series end")
        if wanted[0] < 0:
            raise ValueError("partition endpoints must be non-negative")
        pieces: "list[Segment]" = []
        start = 0
        for end in wanted:
            seg = self._segments[self.segment_index_at(end)]
            pieces.append(seg.restrict(start, end))
            start = end + 1
        return LinearSegmentation(pieces)

    def __repr__(self) -> str:
        return f"LinearSegmentation(n={self.length}, N={self.n_segments})"
