"""The paper's explicit closed-form coefficient updates (Eqs. (1)-(11), (16), (17)).

These are the formulas exactly as printed in the EDBT 2022 paper, kept as a
faithful, independently-testable record.  The production code paths in
:mod:`repro.core` use the sufficient-statistics formulation of
:class:`repro.core.linefit.LineFit`, which is algebraically equivalent; the
test-suite asserts the two agree to floating-point accuracy.

Known issues in the source text (documented in DESIGN.md):

* Eq. (1) prints ``(n - 1) / 2`` where the least-squares derivation requires
  ``(l - 1) / 2`` (segment length, not series length).  Corrected here.
* Eqs. (5) and (6) (recovering the *left* sub-fit during a split) are
  corrupted by typesetting in the available text.  They are provided here in
  the re-derived equivalent form (inverse of the merge Eqs. (3), (4)); the
  right-sub-fit Eqs. (7), (8) are printed intact and implemented verbatim.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "eq1_fit",
    "eq2_extend_right",
    "eq3_eq4_merge",
    "eq5_eq6_split_left",
    "eq7_eq8_split_right",
    "eq9_shrink_right",
    "eq10_extend_left",
    "eq11_shrink_left",
    "eq16_d4",
    "eq17_d1",
]

Coefficients = "tuple[float, float]"


def eq1_fit(values: np.ndarray) -> tuple[float, float]:
    """Paper Eq. (1): slope and intercept of a segment's least-squares line.

    Implements the corrected form with the segment length ``l`` in the
    centring term (the paper prints the series length ``n`` there).
    """
    values = np.asarray(values, dtype=float)
    l = values.shape[0]
    if l < 2:
        return 0.0, float(values[0]) if l == 1 else 0.0
    t = np.arange(l, dtype=float)
    a = 12.0 * float(((t - (l - 1) / 2.0) * values).sum()) / (l * (l - 1) * (l + 1))
    b = 2.0 * float(((2 * l - 1 - 3 * t) * values).sum()) / (l * (l + 1))
    return a, b


def eq2_extend_right(a: float, b: float, l: int, c_new: float) -> tuple[float, float]:
    """Paper Eq. (2): O(1) refit after appending ``c_new`` at local ``t = l``."""
    a_new = ((l - 2) * (l - 1) * a + 6.0 * (c_new - b)) / ((l + 1) * (l + 2))
    b_new = (2.0 * (l - 1) * (a * l - c_new) + (l + 5) * l * b) / ((l + 1) * (l + 2))
    return a_new, b_new


def eq3_eq4_merge(
    a_i: float, b_i: float, l_i: int, a_j: float, b_j: float, l_j: int
) -> tuple[float, float]:
    """Paper Eqs. (3), (4): O(1) refit of two adjacent segments merged into one."""
    l_m = l_i + l_j
    denom_a = l_m * (l_m - 1) * (l_m + 1)
    a_new = (
        a_i * l_i * (l_i - 1) * (l_i + 1 - 3 * l_j)
        - 6.0 * l_i * l_j * b_i
        + a_j * l_j * (l_j - 1) * (l_j + 1 + 3 * l_i)
        + 6.0 * l_i * l_j * b_j
    ) / denom_a
    denom_b = l_m * (l_m + 1)
    b_new = (
        b_i * l_i * (l_i + 1)
        + 2.0 * a_i * l_j * l_i * (l_i - 1)
        + 4.0 * l_i * l_j * b_i
        + b_j * l_j * (l_j + 1)
        - a_j * l_i * l_j * (l_j - 1)
        - 2.0 * l_i * l_j * b_j
    ) / denom_b
    return a_new, b_new


def eq7_eq8_split_right(
    a_m: float, b_m: float, l_m: int, a_i: float, b_i: float, l_i: int
) -> tuple[float, float]:
    """Paper Eqs. (7), (8): recover the right sub-fit from the whole and the left."""
    l_j = l_m - l_i
    denom_a = l_j * (l_j * l_j - 1)
    a_new = (
        a_m * l_m * (l_m - 1) * (l_m + 1 - 3 * l_i)
        + a_i * l_i * (l_i - 1) * (2 * l_m + l_j - 1)
        + 6.0 * l_i * l_m * (b_i - b_m)
    ) / denom_a
    denom_b = l_j * (l_j + 1)
    b_new = (
        a_m * l_i * l_m * (l_m - 1)
        + b_m * l_m * (l_m + 1 + 2 * l_i)
        - a_i * l_i * (l_i - 1) * (l_m + l_j)
        - b_i * l_i * (3 * l_m + l_j + 1)
    ) / denom_b
    return a_new, b_new


def eq5_eq6_split_left(
    a_m: float, b_m: float, l_m: int, a_j: float, b_j: float, l_j: int
) -> tuple[float, float]:
    """Paper Eqs. (5), (6): recover the left sub-fit from the whole and the right.

    The printed equations are corrupted in the available text; this is the
    re-derived equivalent obtained by inverting the merge Eqs. (3), (4)
    through the least-squares sufficient statistics (see DESIGN.md).
    """
    l_i = l_m - l_j
    # sufficient statistics of the whole and the right part
    s1_m, l_m_f = l_m * (l_m - 1) / 2.0, float(l_m)
    s2_m = l_m * (l_m - 1) * (2 * l_m - 1) / 6.0
    s1_j = l_j * (l_j - 1) / 2.0
    s2_j = l_j * (l_j - 1) * (2 * l_j - 1) / 6.0
    sum_y_m = a_m * s1_m + b_m * l_m_f
    sum_ty_m = a_m * s2_m + b_m * s1_m
    sum_y_j = a_j * s1_j + b_j * l_j
    sum_ty_j = a_j * s2_j + b_j * s1_j
    sum_y_i = sum_y_m - sum_y_j
    sum_ty_i = sum_ty_m - (sum_ty_j + l_i * sum_y_j)
    if l_i == 1:
        return 0.0, sum_y_i
    s1_i = l_i * (l_i - 1) / 2.0
    s2_i = l_i * (l_i - 1) * (2 * l_i - 1) / 6.0
    det = l_i * s2_i - s1_i * s1_i
    a_new = (l_i * sum_ty_i - s1_i * sum_y_i) / det
    b_new = (sum_y_i - a_new * s1_i) / l_i
    return a_new, b_new


def eq9_shrink_right(a: float, b: float, l: int, c_last: float) -> tuple[float, float]:
    """Paper Eq. (9): O(1) refit after removing the last point ``c_last``."""
    if l <= 2:
        raise ValueError("Eq. (9) requires l > 2")
    a_new = (l + 4) * a / (l - 2) + 6.0 * (b - c_last) / ((l - 1) * (l - 2))
    b_new = (l - 3) * b / (l - 1) - 2.0 * a + 2.0 * c_last / (l - 1)
    return a_new, b_new


def eq10_extend_left(a: float, b: float, l: int, c_new: float) -> tuple[float, float]:
    """Paper Eq. (10): O(1) refit after prepending ``c_new``."""
    a_new = (a * (l - 1) * (l + 4) + 6.0 * (b - c_new)) / ((l + 1) * (l + 2))
    b_new = (2.0 * (2 * l + 1) * c_new + l * (l - 1) * (b - a)) / ((l + 1) * (l + 2))
    return a_new, b_new


def eq11_shrink_left(a: float, b: float, l: int, c_first: float) -> tuple[float, float]:
    """Paper Eq. (11): O(1) refit after removing the first point ``c_first``."""
    if l <= 2:
        raise ValueError("Eq. (11) requires l > 2")
    a_new = a + 6.0 * (c_first - b) / ((l - 1) * (l - 2))
    b_new = a + ((l + 3) * b - 4.0 * c_first) / (l - 1)
    return a_new, b_new


def eq16_d4(l: int, c_new: float, c_ext: float) -> float:
    """Paper Eq. (16): gap between increment and extended lines at ``t = l``."""
    return 2.0 * (2 * l + 1) * (c_new - c_ext) / ((l + 1) * (l + 2))


def eq17_d1(l: int, c_new: float, c_ext: float) -> float:
    """Paper Eq. (17): gap between increment and extended lines at ``t = 0``.

    The printed equation omits a factor of 2 (re-derived via the fit's linear
    response to a unit residual at ``t = l``; see DESIGN.md).  With the factor
    restored, Lemma 4.1 (``d1 * d4 <= 0``) and Theorem 4.1 (``|d4| >= |d1|``,
    ``|d3| + |d4| = |d5|``) hold exactly, as the property tests verify.
    """
    return 2.0 * (l - 1) * (c_ext - c_new) / ((l + 1) * (l + 2))
