"""Core SAPLA machinery: segment algebra, areas, bounds, and the three stages."""

from .areas import area_between_lines, increment_area, reconstruction_area
from .bounds import (
    beta_initialization,
    beta_merge,
    beta_segment,
    beta_split,
    exact_max_deviation,
    get_max,
    segment_bound,
)
from .endpoint_movement import move_endpoints
from .initialization import initialize, initialize_fast
from .linefit import LineFit, SeriesStats, fit_line
from .sapla import SAPLA, sapla_transform
from .segment import LinearSegmentation, Segment
from .split_merge import find_split_point, merge_pair_area, split_merge
from .streaming import StreamingSAPLA

__all__ = [
    "SAPLA",
    "StreamingSAPLA",
    "sapla_transform",
    "LineFit",
    "SeriesStats",
    "fit_line",
    "Segment",
    "LinearSegmentation",
    "area_between_lines",
    "increment_area",
    "reconstruction_area",
    "get_max",
    "beta_initialization",
    "beta_merge",
    "beta_split",
    "beta_segment",
    "segment_bound",
    "exact_max_deviation",
    "initialize",
    "initialize_fast",
    "split_merge",
    "find_split_point",
    "merge_pair_area",
    "move_endpoints",
]
