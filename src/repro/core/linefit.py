"""Least-squares line fitting over integer abscissae with O(1) updates.

Every segment-based method in this package (SAPLA, APLA, PLA, APCA, ...)
represents a stretch of a time series by the least-squares line fitted over
local abscissae ``t = 0, 1, ..., length - 1`` (paper Eq. (1)).  SAPLA's whole
speed argument rests on being able to *extend*, *shrink*, *merge* and *split*
such fits in constant time (paper Eqs. (2)-(11)).

The closed forms in the paper follow from the least-squares normal equations:

    sum(y)   = a * S1 + b * l          (residuals sum to zero)
    sum(t*y) = a * S2 + b * S1         (residuals are orthogonal to t)

with ``S1 = l(l-1)/2`` and ``S2 = l(l-1)(2l-1)/6``.  Therefore the pair
``(sum_y, sum_ty)`` is a *sufficient statistic* for the fit, recoverable
exactly from ``(a, b, l)`` and updatable in O(1) under every operation the
paper needs.  This module implements the fits in terms of those statistics;
:mod:`repro.core.paper_equations` re-states the paper's explicit formulas and
the test-suite cross-checks the two against each other and against refits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LineFit", "SeriesStats", "SeriesPrefix", "fit_line"]


def _moment_sums(length: int) -> tuple[float, float]:
    """Return ``(S1, S2)``: sums of ``t`` and ``t**2`` for ``t in [0, length)``."""
    s1 = length * (length - 1) / 2.0
    s2 = length * (length - 1) * (2 * length - 1) / 6.0
    return s1, s2


@dataclass(frozen=True)
class LineFit:
    """Least-squares line over ``t = 0 .. length-1`` kept as sufficient statistics.

    Attributes:
        length: number of points covered by the fit (``l`` in the paper).
        sum_y: sum of the covered values.
        sum_ty: sum of ``t * y`` with *local* ``t`` starting at zero.
    """

    length: int
    sum_y: float
    sum_ty: float

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: np.ndarray) -> "LineFit":
        """Fit the line over ``values`` (local abscissae ``0..len-1``)."""
        values = np.asarray(values, dtype=float)
        length = int(values.shape[0])
        if length == 0:
            raise ValueError("cannot fit a line over an empty segment")
        t = np.arange(length, dtype=float)
        return cls(length=length, sum_y=float(values.sum()), sum_ty=float((t * values).sum()))

    @classmethod
    def from_coefficients(cls, a: float, b: float, length: int) -> "LineFit":
        """Recover the sufficient statistics from slope/intercept (normal equations)."""
        if length < 1:
            raise ValueError("length must be >= 1")
        s1, s2 = _moment_sums(length)
        return cls(length=length, sum_y=a * s1 + b * length, sum_ty=a * s2 + b * s1)

    # ------------------------------------------------------------------
    # coefficients
    # ------------------------------------------------------------------
    @property
    def coefficients(self) -> tuple[float, float]:
        """Return ``(a, b)``: slope and intercept of the least-squares line.

        A single point has slope zero; this matches the paper's convention of
        never producing genuinely degenerate fits (segments have ``l >= 2``
        except transiently at series boundaries).
        """
        l = self.length
        if l == 1:
            return 0.0, self.sum_y
        s1, s2 = _moment_sums(l)
        # determinant of the normal equations: l*S2 - S1^2 = l^2(l-1)(l+1)/12
        det = l * s2 - s1 * s1
        a = (l * self.sum_ty - s1 * self.sum_y) / det
        b = (self.sum_y - a * s1) / l
        return a, b

    @property
    def a(self) -> float:
        return self.coefficients[0]

    @property
    def b(self) -> float:
        return self.coefficients[1]

    def value_at(self, t: float) -> float:
        """Evaluate the fitted line at local abscissa ``t``."""
        a, b = self.coefficients
        return a * t + b

    def reconstruct(self) -> np.ndarray:
        """Reconstructed values at ``t = 0 .. length-1``."""
        a, b = self.coefficients
        return a * np.arange(self.length, dtype=float) + b

    # ------------------------------------------------------------------
    # O(1) updates (paper Eqs. (2), (3), (4), (9), (10), (11))
    # ------------------------------------------------------------------
    def extend_right(self, value: float) -> "LineFit":
        """Append one point after the segment (paper Eq. (2))."""
        return LineFit(
            length=self.length + 1,
            sum_y=self.sum_y + value,
            sum_ty=self.sum_ty + self.length * value,
        )

    def shrink_right(self, value: float) -> "LineFit":
        """Drop the last covered point, whose value must be given (paper Eq. (9))."""
        if self.length <= 1:
            raise ValueError("cannot shrink a single-point fit")
        return LineFit(
            length=self.length - 1,
            sum_y=self.sum_y - value,
            sum_ty=self.sum_ty - (self.length - 1) * value,
        )

    def extend_left(self, value: float) -> "LineFit":
        """Prepend one point before the segment (paper Eq. (10)).

        Existing points shift from local ``t`` to ``t + 1``.
        """
        return LineFit(
            length=self.length + 1,
            sum_y=self.sum_y + value,
            sum_ty=self.sum_ty + self.sum_y,
        )

    def shrink_left(self, value: float) -> "LineFit":
        """Drop the first covered point, whose value must be given (paper Eq. (11))."""
        if self.length <= 1:
            raise ValueError("cannot shrink a single-point fit")
        remaining = self.sum_y - value
        return LineFit(
            length=self.length - 1,
            sum_y=remaining,
            sum_ty=self.sum_ty - remaining,
        )

    def merge(self, right: "LineFit") -> "LineFit":
        """Merge with the adjacent segment to the right (paper Eqs. (3), (4)).

        Because the sufficient statistics recovered from each fit equal those
        of the underlying points, the merged fit equals the least-squares fit
        over the union of the original points.
        """
        return LineFit(
            length=self.length + right.length,
            sum_y=self.sum_y + right.sum_y,
            sum_ty=self.sum_ty + right.sum_ty + self.length * right.sum_y,
        )

    def split_off_right(self, left: "LineFit") -> "LineFit":
        """Recover the right sub-fit given the fit over the left part (Eqs. (7), (8))."""
        if left.length >= self.length:
            raise ValueError("left part must be strictly shorter than the whole")
        sum_y = self.sum_y - left.sum_y
        # right part's global t*y minus the coordinate shift by left.length
        sum_ty = self.sum_ty - left.sum_ty - left.length * sum_y
        return LineFit(length=self.length - left.length, sum_y=sum_y, sum_ty=sum_ty)

    def split_off_left(self, right: "LineFit") -> "LineFit":
        """Recover the left sub-fit given the fit over the right part (Eqs. (5), (6))."""
        if right.length >= self.length:
            raise ValueError("right part must be strictly shorter than the whole")
        left_length = self.length - right.length
        sum_y = self.sum_y - right.sum_y
        sum_ty = self.sum_ty - (right.sum_ty + left_length * right.sum_y)
        return LineFit(length=left_length, sum_y=sum_y, sum_ty=sum_ty)


class SeriesStats:
    """Prefix sums over a series giving the exact line fit of any window in O(1).

    SAPLA holds the original series while it iterates, so every split /
    endpoint movement can obtain the *exact* least-squares fit of the new
    sub-segments from two prefix-sum lookups instead of a rescan.
    """

    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise ValueError("SeriesStats expects a one-dimensional series")
        self._values = values
        n = values.shape[0]
        t = np.arange(n, dtype=float)
        self._prefix_y = np.concatenate(([0.0], np.cumsum(values)))
        self._prefix_ty = np.concatenate(([0.0], np.cumsum(t * values)))
        self._prefix_yy = np.concatenate(([0.0], np.cumsum(values * values)))

    @property
    def values(self) -> np.ndarray:
        return self._values

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def window_fit(self, start: int, end: int) -> LineFit:
        """Exact least-squares :class:`LineFit` over global indices ``[start, end]``.

        Both bounds are inclusive, matching the paper's segment convention
        where ``r_i`` is the right endpoint index.
        """
        if not 0 <= start <= end < len(self):
            raise IndexError(f"window [{start}, {end}] out of range for length {len(self)}")
        sum_y = self._prefix_y[end + 1] - self._prefix_y[start]
        sum_ty_global = self._prefix_ty[end + 1] - self._prefix_ty[start]
        # shift abscissae so the window starts at local t = 0
        sum_ty = sum_ty_global - start * sum_y
        return LineFit(length=end - start + 1, sum_y=sum_y, sum_ty=sum_ty)

    def window_sums(self, start: int, end: int) -> tuple[float, float]:
        """Return ``(sum_y, sum_y_squared)`` over global ``[start, end]`` in O(1).

        Used by constant-value methods (APCA, PAA) whose merge cost is the
        sum-of-squared-errors around the window mean.
        """
        if not 0 <= start <= end < len(self):
            raise IndexError(f"window [{start}, {end}] out of range for length {len(self)}")
        sum_y = float(self._prefix_y[end + 1] - self._prefix_y[start])
        sum_yy = float(self._prefix_yy[end + 1] - self._prefix_yy[start])
        return sum_y, sum_yy

    def window_constant_sse(self, start: int, end: int) -> float:
        """Sum of squared errors of the best constant over ``[start, end]``."""
        sum_y, sum_yy = self.window_sums(start, end)
        length = end - start + 1
        return max(sum_yy - sum_y * sum_y / length, 0.0)


# The kernel layer's name for the sufficient-statistics view: cumulative
# sums of y, t*y and y**2 computed once per series with np.cumsum.
SeriesPrefix = SeriesStats


def fit_line(values: np.ndarray) -> tuple[float, float]:
    """Convenience wrapper returning ``(a, b)`` of the least-squares line."""
    return LineFit.from_values(values).coefficients
