"""Streaming SAPLA: online adaptive segmentation of an unbounded stream.

The paper's initialization scan (Algorithm 4.2) is already one-pass; this
module turns it into a bounded-memory online reducer.  Each appended point
extends the open segment in O(1) (Eq. (2) via sufficient statistics).  When
the point's Increment Area exceeds the adaptive threshold — the smallest of
the ``max_segments - 1`` largest areas seen, exactly the paper's ``eta``
heap — the open segment closes and a new one starts.  Whenever the segment
count would exceed the budget, the adjacent pair with the smallest
Reconstruction Area merges (Eqs. (3), (4) via statistics), so memory stays
O(max_segments) while every kept coefficient remains the *exact*
least-squares fit of the points it covers.

Merge selection is amortised: the Reconstruction Area (and merged fit) of
every adjacent closed pair is cached, so picking the cheapest pair is a
scan over cached floats and each merge recomputes only its two disturbed
neighbours instead of re-deriving every pair.  Amortised cost per point:
O(log N) for the threshold heap plus O(N) float comparisons on the rare
merge — the streaming analogue of SAPLA's O(n(N + log n)).
:meth:`StreamingSAPLA.extend` is the bulk path: it validates the chunk
once and runs a tightened append loop (``benchmarks/bench_streaming_extend.py``
measures the win over point-at-a-time :meth:`StreamingSAPLA.append`).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Tuple

import numpy as np

from .areas import increment_area, reconstruction_area
from .kernels import areas_between_lines, line_coefficients
from .linefit import LineFit
from .segment import LinearSegmentation, Segment

__all__ = ["StreamingSAPLA"]


class _Piece:
    """A closed stream segment: exact fit plus its global start index."""

    __slots__ = ("start", "fit")

    def __init__(self, start: int, fit: LineFit):
        self.start = start
        self.fit = fit

    @property
    def end(self) -> int:
        return self.start + self.fit.length - 1

    def to_segment(self) -> Segment:
        a, b = self.fit.coefficients
        return Segment(start=self.start, end=self.end, a=a, b=b)


class StreamingSAPLA:
    """Bounded-memory online SAPLA over an append-only stream of values.

    Args:
        max_segments: segment budget ``N``; memory stays O(N) regardless of
            how many points arrive.

    Example::

        stream = StreamingSAPLA(max_segments=8)
        for value in sensor_feed:
            stream.append(value)
        rep = stream.representation   # LinearSegmentation snapshot
    """

    def __init__(self, max_segments: int):
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.max_segments = int(max_segments)
        self._closed: "List[_Piece]" = []
        #: ``_pair_cache[i]`` caches ``(reconstruction_area, merged_fit)``
        #: for the adjacent closed pair ``(i, i + 1)`` — kept in lockstep
        #: with ``_closed`` so merge selection never re-derives a pair.
        self._pair_cache: "List[Tuple[float, LineFit]]" = []
        self._open_start = 0
        self._open: Optional[LineFit] = None
        self._pending: Optional[float] = None  # first point of a fresh segment
        self._count = 0
        self._threshold_heap: "List[float]" = []

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """How many points have been appended so far."""
        return self._count

    @property
    def n_segments(self) -> int:
        open_count = 1 if (self._open is not None or self._pending is not None) else 0
        return len(self._closed) + open_count

    # ------------------------------------------------------------------
    def append(self, value: float) -> None:
        """Consume one stream point in amortised O(log N)."""
        value = float(value)
        if not np.isfinite(value):
            raise ValueError("stream values must be finite")
        self._ingest(value)

    def extend(self, values: "Iterable[float]") -> None:
        """Append a whole chunk of values in order (the bulk path).

        Equivalent point for point to calling :meth:`append` in a loop —
        same splits, same merges, same representation — but the chunk is
        converted and validated once up front and the per-point loop runs
        without redundant conversions, so bulk ingest is measurably
        faster (see ``benchmarks/bench_streaming_extend.py``).
        """
        chunk = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=float
        ).ravel()
        if chunk.size == 0:
            return
        if not np.isfinite(chunk).all():
            raise ValueError("stream values must be finite")
        ingest = self._ingest
        capacity = self.max_segments - 1
        idx, m = 0, chunk.size
        while idx < m:
            if self._open is None or len(self._threshold_heap) < capacity:
                # seeding a fresh two-point segment, or the eta heap is still
                # filling (every candidate splits immediately): scalar append
                ingest(float(chunk[idx]))
                idx += 1
                continue
            if capacity == 0:
                # a budget of one segment never splits; absorb the rest
                self._absorb_run(chunk, idx, m)
                break
            hit = self._scan_quiet_run(chunk, idx)
            if hit < 0:
                break
            # the hit point re-runs the scalar append: its increment area is
            # bit-identical to the kernel lane, so the split (and the eta
            # heap update) lands exactly as in the point-at-a-time loop
            ingest(float(chunk[hit]))
            idx = hit + 1

    def _absorb_run(self, chunk: np.ndarray, idx: int, stop: int) -> None:
        """Fold ``chunk[idx:stop]`` into the open fit as sequential appends.

        Seeding the cumulative sums with the open fit's statistics reproduces
        ``extend_right``'s left-to-right additions exactly — ``cumsum`` over
        ``[seed, v0, v1, ...]``, never ``seed + cumsum(v)``, which would
        associate the additions differently.
        """
        window = chunk[idx:stop]
        fit = self._open
        offsets = np.arange(window.size)
        sums_y = np.cumsum(np.concatenate(([fit.sum_y], window)))
        sums_ty = np.cumsum(np.concatenate(([fit.sum_ty], (fit.length + offsets) * window)))
        self._open = LineFit(
            length=fit.length + window.size,
            sum_y=float(sums_y[-1]),
            sum_ty=float(sums_ty[-1]),
        )
        self._count += window.size

    def _scan_quiet_run(self, chunk: np.ndarray, idx: int) -> int:
        """Absorb points until one's Increment Area crosses the threshold.

        Returns the index of the first splitting point, or ``-1`` after the
        whole remainder was absorbed.  Within a quiet run the threshold is
        constant (the eta heap only changes when a split fires), so a whole
        window of candidates is evaluated in one kernel pass and the first
        crossing located with ``argmax`` — the streaming counterpart of
        ``initialize_fast``.
        """
        threshold = self._threshold_heap[0]
        n = chunk.size
        cursor = idx
        span, max_span = 16, 1024
        while cursor < n:
            stop = min(cursor + span, n)
            window = chunk[cursor:stop]
            fit = self._open
            offsets = np.arange(window.size)
            lengths = fit.length + offsets
            sums_y = np.cumsum(np.concatenate(([fit.sum_y], window)))
            sums_ty = np.cumsum(np.concatenate(([fit.sum_ty], lengths * window)))
            a2, b2 = line_coefficients(lengths, sums_y[:-1], sums_ty[:-1])
            a1, b1 = line_coefficients(lengths + 1, sums_y[1:], sums_ty[1:])
            areas = areas_between_lines(a1, b1, a2, b2, lengths.astype(float))
            above = areas > threshold
            if above.any():
                k = int(np.argmax(above))
                if k > 0:
                    self._open = LineFit(
                        length=int(lengths[k]),
                        sum_y=float(sums_y[k]),
                        sum_ty=float(sums_ty[k]),
                    )
                    self._count += k
                return cursor + k
            self._open = LineFit(
                length=fit.length + window.size,
                sum_y=float(sums_y[-1]),
                sum_ty=float(sums_ty[-1]),
            )
            self._count += window.size
            cursor = stop
            span = min(span * 2, max_span)
        return -1

    def _ingest(self, value: float) -> None:
        """The append fast path: ``value`` is already a finite float."""
        self._count += 1
        if self._open is None:
            if self._pending is None:
                self._pending = value  # need two points for a line
                return
            self._open = LineFit.from_values(np.array([self._pending, value]))
            self._pending = None
            return

        incremented = self._open.extend_right(value)
        area = increment_area(self._open, incremented)
        if self._should_split(area):
            self._close_open()
            self._pending = value
            self._open_start = self._count - 1
        else:
            self._open = incremented

    # ------------------------------------------------------------------
    def _should_split(self, area: float) -> bool:
        """The paper's eta heap: keep the N-1 largest increment areas."""
        capacity = self.max_segments - 1
        if capacity == 0:
            return False
        if len(self._threshold_heap) < capacity:
            heapq.heappush(self._threshold_heap, area)
            return True
        if area > self._threshold_heap[0]:
            heapq.heapreplace(self._threshold_heap, area)
            return True
        return False

    def _pair_entry(self, i: int) -> "Tuple[float, LineFit]":
        """The cached merge candidate for adjacent closed pair ``(i, i+1)``."""
        left, right = self._closed[i], self._closed[i + 1]
        merged = left.fit.merge(right.fit)
        return reconstruction_area(left.fit, right.fit, merged), merged

    def _close_open(self) -> None:
        self._closed.append(_Piece(self._open_start, self._open))
        if len(self._closed) >= 2:
            self._pair_cache.append(self._pair_entry(len(self._closed) - 2))
        self._open = None
        while len(self._closed) > self.max_segments - 1 and len(self._closed) >= 2:
            self._merge_cheapest_pair()

    def _merge_cheapest_pair(self) -> None:
        # strict < keeps the historical tie-break: the earliest cheapest pair
        best_i, best_area = 0, float("inf")
        for i, (area, _) in enumerate(self._pair_cache):
            if area < best_area:
                best_i, best_area = i, area
        left = self._closed[best_i]
        merged = self._pair_cache[best_i][1]
        self._closed[best_i : best_i + 2] = [_Piece(left.start, merged)]
        # the merged piece disturbs exactly its two neighbouring pairs
        del self._pair_cache[best_i]
        if best_i > 0:
            self._pair_cache[best_i - 1] = self._pair_entry(best_i - 1)
        if best_i < len(self._closed) - 1:
            self._pair_cache[best_i] = self._pair_entry(best_i)

    # ------------------------------------------------------------------
    @property
    def representation(self) -> LinearSegmentation:
        """A :class:`LinearSegmentation` snapshot of the stream so far."""
        if self._count == 0:
            raise ValueError("no points have been appended yet")
        pieces = [p.to_segment() for p in self._closed]
        if self._open is not None:
            a, b = self._open.coefficients
            pieces.append(
                Segment(self._open_start, self._open_start + self._open.length - 1, a, b)
            )
        elif self._pending is not None:
            pieces.append(Segment(self._count - 1, self._count - 1, 0.0, self._pending))
        return LinearSegmentation(pieces)

    def reconstruct(self) -> np.ndarray:
        """Reconstruct every point seen so far from the snapshot."""
        return self.representation.reconstruct()

    def __repr__(self) -> str:
        return (
            f"StreamingSAPLA(max_segments={self.max_segments}, "
            f"n_points={self._count}, n_segments={self.n_segments})"
        )
