"""SAPLA — Self Adaptive Piecewise Linear Approximation (paper Sec. 4).

The driver composes the three stages of Fig. 2: initialization (single scan,
increment-area endpoints), split & merge iteration (reach the user-defined
``N`` and lower the sum upper bound), and segment endpoint movement
(boundary fine-tuning).  Worst-case time ``O(n (N + log n))``.

Typical usage::

    from repro import SAPLA
    rep = SAPLA(n_coefficients=12).transform(series)   # N = 12 / 3 = 4
    approx = rep.reconstruct()
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import obs
from .endpoint_movement import move_endpoints
from .initialization import initialize_fast
from .linefit import SeriesStats
from .segment import LinearSegmentation
from .split_merge import split_merge

__all__ = ["SAPLA", "sapla_transform"]


class SAPLA:
    """Self Adaptive Piecewise Linear Approximation.

    Args:
        n_segments: target segment count ``N``.  Exactly one of
            ``n_segments`` / ``n_coefficients`` must be given.
        n_coefficients: target coefficient budget ``M``; SAPLA stores three
            coefficients per segment, so ``N = M // 3`` (Table 1).
        bound_mode: ``'paper'`` (O(1) conditional upper bounds, the paper's
            method) or ``'exact'`` (steer the iterations by the true segment
            max deviation — slower, used for the ablation benches).
        refine_endpoints: whether to run stage 3.  Disabling it is the
            paper's implicit ablation of the endpoint movement iteration.
        split_mode: ``'scan'`` (exact O(l) split-point search, default) or
            ``'peak'`` (the paper's Fig. 7 peak-finding probe — fewer area
            evaluations, possibly a local maximum).
    """

    name = "SAPLA"

    def __init__(
        self,
        n_segments: Optional[int] = None,
        n_coefficients: Optional[int] = None,
        bound_mode: str = "paper",
        refine_endpoints: bool = True,
        split_mode: str = "scan",
    ):
        if (n_segments is None) == (n_coefficients is None):
            raise ValueError("give exactly one of n_segments / n_coefficients")
        if n_segments is None:
            n_segments = max(n_coefficients // 3, 1)
        if n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        if bound_mode not in ("paper", "exact"):
            raise ValueError(f"unknown bound mode: {bound_mode!r}")
        if split_mode not in ("scan", "peak"):
            raise ValueError(f"unknown split mode: {split_mode!r}")
        self.n_segments = int(n_segments)
        self.bound_mode = bound_mode
        self.refine_endpoints = refine_endpoints
        self.split_mode = split_mode

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        """Reduce ``series`` to its SAPLA representation ``C-hat``."""
        series = np.asarray(series, dtype=float)
        if series.ndim != 1:
            raise ValueError("SAPLA reduces one-dimensional series")
        if series.shape[0] == 0:
            raise ValueError("cannot reduce an empty series")
        if not np.isfinite(series).all():
            raise ValueError("SAPLA input contains NaN or infinite values")
        with obs.span("sapla.transform"):
            obs.count("sapla.transforms")
            stats = SeriesStats(series)
            with obs.span("sapla.initialize"):
                segments = initialize_fast(stats, self.n_segments)
            with obs.span("sapla.split_merge"):
                segments = split_merge(
                    stats, segments, self.n_segments, self.bound_mode, split_mode=self.split_mode
                )
            if self.refine_endpoints:
                with obs.span("sapla.endpoint_movement"):
                    segments = move_endpoints(stats, segments, self.bound_mode)
            obs.observe("sapla.segment_count", len(segments))
        return LinearSegmentation(segments)

    def __repr__(self) -> str:
        return (
            f"SAPLA(n_segments={self.n_segments}, bound_mode={self.bound_mode!r}, "
            f"refine_endpoints={self.refine_endpoints})"
        )


def sapla_transform(
    series: np.ndarray, n_segments: int, bound_mode: str = "paper"
) -> LinearSegmentation:
    """Functional convenience wrapper around :class:`SAPLA`."""
    return SAPLA(n_segments=n_segments, bound_mode=bound_mode).transform(series)
