"""SAPLA stage 3 — segment endpoint movement iteration (Algorithms 4.4, 4.5).

Split & merge fixes *how many* segments exist; this stage fine-tunes *where*
their boundaries sit.  Segments are visited in decreasing order of their
upper bound ``beta_i``; each visit greedily slides the segment's left and
right endpoints one position at a time (the four cases of Fig. 9) while the
summed bound of the two affected segments decreases.  Every trial move refits
the two affected segments exactly in O(1) via prefix statistics.
"""

from __future__ import annotations

from typing import Optional

from .. import obs
from .bounds import segment_bound
from .kernels import segment_bounds_vector
from .linefit import SeriesStats
from .segment import Segment

__all__ = ["move_endpoints"]


def _cached_bound(cache: "dict[Segment, float]", values, seg: Segment, mode: str) -> float:
    """``segment_bound`` memoised on the (frozen, hashable) segment.

    The bound is a pure function of the segment and the series, both fixed
    for the duration of one ``move_endpoints`` call, so caching cannot change
    any value — only skip recomputation when trial moves revisit a segment.
    """
    bound = cache.get(seg)
    if bound is None:
        bound = segment_bound(values, seg, mode)
        cache[seg] = bound
    return bound

# the four movement cases of Fig. 9: (boundary between i-1 and i, direction)
_MOVES = (
    ("right", +1),  # case 1: grow right endpoint, right neighbour shrinks
    ("right", -1),  # case 2: shrink right endpoint, right neighbour grows
    ("left", -1),  # case 3: grow left endpoint, left neighbour shrinks
    ("left", +1),  # case 4: shrink left endpoint, left neighbour grows
)


def _try_move(
    stats: SeriesStats,
    segments: "list[Segment]",
    i: int,
    side: str,
    direction: int,
    bound_mode: str,
    cache: "Optional[dict[Segment, float]]" = None,
) -> "Optional[tuple[int, Segment, Segment, float]]":
    """Evaluate one endpoint move of segment ``i``.

    Returns ``(pair_index, new_left, new_right, delta)`` where ``delta`` is
    the change in the summed bound of the affected pair, or ``None`` when the
    move is impossible (no neighbour, or a segment would vanish).
    """
    if cache is None:
        cache = {}
    values = stats.values
    if side == "right":
        j = i + 1
        if j >= len(segments):
            return None
        left_seg, right_seg = segments[i], segments[j]
        boundary = left_seg.end + direction
        pair_index = i
    else:
        j = i - 1
        if j < 0:
            return None
        left_seg, right_seg = segments[j], segments[i]
        boundary = left_seg.end + direction
        pair_index = j
    if boundary < left_seg.start or boundary >= right_seg.end:
        return None  # a segment would become empty
    new_left = Segment.fit(stats, left_seg.start, boundary)
    new_right = Segment.fit(stats, boundary + 1, right_seg.end)
    old = _cached_bound(cache, values, left_seg, bound_mode) + _cached_bound(
        cache, values, right_seg, bound_mode
    )
    new = _cached_bound(cache, values, new_left, bound_mode) + _cached_bound(
        cache, values, new_right, bound_mode
    )
    return pair_index, new_left, new_right, new - old


def move_endpoints(
    stats: SeriesStats,
    segments: "list[Segment]",
    bound_mode: str = "paper",
    max_moves: Optional[int] = None,
) -> "list[Segment]":
    """Run the endpoint movement iteration and return the refined segments."""
    segments = list(segments)
    if len(segments) < 2:
        return segments
    values = stats.values
    budget = max_moves if max_moves is not None else 4 * len(stats)

    # visit segments from the largest bound downwards (the paper's priority
    # queue); one kernel pass seeds the bound cache used by the trial moves
    cache: "dict[Segment, float]" = {}
    if bound_mode == "paper":
        for seg, bound in zip(segments, segment_bounds_vector(values, segments)):
            cache[seg] = bound
    order = sorted(
        range(len(segments)),
        key=lambda i: _cached_bound(cache, values, segments[i], bound_mode),
        reverse=True,
    )
    for i in order:
        while budget > 0:
            candidates = [
                move
                for move in (
                    _try_move(stats, segments, i, side, direction, bound_mode, cache)
                    for side, direction in _MOVES
                )
                if move is not None
            ]
            if not candidates:
                break
            pair_index, new_left, new_right, delta = min(candidates, key=lambda m: m[3])
            if delta >= -1e-12:
                break
            segments[pair_index] = new_left
            segments[pair_index + 1] = new_right
            obs.count("sapla.endpoint.moves")
            budget -= 1
    return segments
