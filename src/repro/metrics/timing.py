"""CPU- and wall-time measurement helpers.

The paper measures CPU time rather than wall-clock time because the whole
pipeline is memory-resident; ``time.process_time`` gives the same semantics.
``WallTimer`` / ``wall_time`` are the wall-clock siblings for disk-resident
or I/O-bound extensions where sleeping time matters too.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CPUTimer", "WallTimer", "cpu_time", "wall_time"]


@dataclass
class _SectionTimer:
    """Accumulates seconds across one or more non-overlapping timed sections.

    ``start`` while a section is already open raises rather than silently
    clobbering the running section's start point; ``stop`` without a
    matching ``start`` raises likewise.
    """

    elapsed: float = 0.0
    _started: "Optional[float]" = field(default=None, repr=False)

    def _now(self) -> float:
        raise NotImplementedError

    def start(self) -> None:
        """Begin a timed section; raises if one is already running."""
        if self._started is not None:
            raise RuntimeError(
                f"{type(self).__name__}.start() called while a section is running; "
                "stop() it first (use one timer per concurrent section)"
            )
        self._started = self._now()

    def stop(self) -> float:
        """End the section; return and accumulate its seconds."""
        if self._started is None:
            raise RuntimeError(f"{type(self).__name__}.stop() called without start()")
        delta = self._now() - self._started
        self._started = None
        self.elapsed += delta
        return delta

    @property
    def running(self) -> bool:
        """Whether a section is currently open."""
        return self._started is not None


@dataclass
class CPUTimer(_SectionTimer):
    """Accumulates CPU seconds across one or more timed sections."""

    def _now(self) -> float:
        return time.process_time()


@dataclass
class WallTimer(_SectionTimer):
    """Accumulates wall-clock seconds across one or more timed sections."""

    def _now(self) -> float:
        return time.perf_counter()


@contextmanager
def cpu_time(timer: "CPUTimer | None" = None):
    """Context manager yielding a :class:`CPUTimer` for the enclosed block."""
    timer = timer or CPUTimer()
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()


@contextmanager
def wall_time(timer: "WallTimer | None" = None):
    """Context manager yielding a :class:`WallTimer` for the enclosed block."""
    timer = timer or WallTimer()
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()
