"""CPU-time measurement helpers.

The paper measures CPU time rather than wall-clock time because the whole
pipeline is memory-resident; ``time.process_time`` gives the same semantics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["CPUTimer", "cpu_time"]


@dataclass
class CPUTimer:
    """Accumulates CPU seconds across one or more timed sections."""

    elapsed: float = 0.0
    _started: float = field(default=0.0, repr=False)

    def start(self) -> None:
        """Begin a timed section."""
        self._started = time.process_time()

    def stop(self) -> float:
        """End the section; return and accumulate its CPU seconds."""
        delta = time.process_time() - self._started
        self.elapsed += delta
        return delta


@contextmanager
def cpu_time(timer: "CPUTimer | None" = None):
    """Context manager yielding a :class:`CPUTimer` for the enclosed block."""
    timer = timer or CPUTimer()
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()
