"""Max deviation metrics (paper Definition 3.4, Fig. 12a)."""

from __future__ import annotations

import numpy as np

from ..core.segment import LinearSegmentation

__all__ = ["max_deviation", "segment_deviations", "sum_of_segment_deviations"]


def max_deviation(series: np.ndarray, reconstruction: np.ndarray) -> float:
    """Largest pointwise gap between a series and its reconstruction."""
    series = np.asarray(series, dtype=float)
    reconstruction = np.asarray(reconstruction, dtype=float)
    if series.shape != reconstruction.shape:
        raise ValueError("series and reconstruction lengths differ")
    return float(np.abs(series - reconstruction).max())


def segment_deviations(series: np.ndarray, representation: LinearSegmentation) -> "list[float]":
    """Per-segment max deviations ``epsilon_i``."""
    series = np.asarray(series, dtype=float)
    if series.shape[0] != representation.length:
        raise ValueError("series and representation lengths differ")
    return [
        float(np.abs(series[seg.start : seg.end + 1] - seg.reconstruct()).max())
        for seg in representation
    ]


def sum_of_segment_deviations(series: np.ndarray, representation: LinearSegmentation) -> float:
    """The objective SAPLA/APLA minimise (Fig. 1's comparison measure)."""
    return sum(segment_deviations(series, representation))
