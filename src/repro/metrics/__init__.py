"""Evaluation metrics: max deviation, pruning power, accuracy, CPU timing."""

from ..index.knn import KNNResult
from .deviation import max_deviation, segment_deviations, sum_of_segment_deviations
from .timing import CPUTimer, WallTimer, cpu_time, wall_time

__all__ = [
    "max_deviation",
    "segment_deviations",
    "sum_of_segment_deviations",
    "CPUTimer",
    "WallTimer",
    "cpu_time",
    "wall_time",
    "KNNResult",
]
