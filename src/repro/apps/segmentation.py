"""Semantic segmentation / change-point detection from SAPLA boundaries.

SAPLA's segment endpoints *are* structural change points: the pipeline
places boundaries where one line stops describing the data.  This module
exposes them as a change-point detector and scores each boundary by the
Reconstruction Area that merging its two sides would re-introduce — a large
area means the regimes on either side genuinely differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.linefit import SeriesStats
from ..core.sapla import SAPLA
from ..core.split_merge import merge_pair_area

__all__ = ["ChangePoint", "detect_change_points"]


@dataclass(frozen=True)
class ChangePoint:
    """A detected regime boundary."""

    position: int  # last index of the left regime
    score: float  # reconstruction area across the boundary (higher = stronger)


def detect_change_points(
    series: np.ndarray,
    n_change_points: int,
    candidate_factor: int = 3,
) -> "List[ChangePoint]":
    """Detect up to ``n_change_points`` regime boundaries in ``series``.

    SAPLA runs with ``candidate_factor`` times as many segments as requested
    change points; the boundaries are then ranked by their merge
    Reconstruction Area and the strongest kept.
    """
    if n_change_points < 1:
        raise ValueError("n_change_points must be >= 1")
    series = np.asarray(series, dtype=float)
    candidates = max(n_change_points * candidate_factor + 1, 2)
    representation = SAPLA(n_segments=candidates).transform(series)
    stats = SeriesStats(series)

    scored = []
    segments = representation.segments
    for left, right in zip(segments, segments[1:]):
        score = merge_pair_area(stats, left, right)
        scored.append(ChangePoint(position=left.end, score=float(score)))
    scored.sort(key=lambda cp: cp.score, reverse=True)
    kept = scored[:n_change_points]
    return sorted(kept, key=lambda cp: cp.position)
