"""k-means clustering of time series in the reduced space.

Clustering is another task the paper's introduction motivates.  Lloyd's
algorithm runs on the *reconstructions* of the reduced representations: the
distance between reconstructions is exactly Dist_PAR, so clustering in the
reduced space is clustering under the paper's distance while each iteration
stays O(count * k * n) on dense vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reduction.base import Reducer, reduce_rows

__all__ = ["ClusteringResult", "kmeans_time_series"]


@dataclass(frozen=True)
class ClusteringResult:
    """k-means outcome over a collection of series."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iterations: int


def kmeans_time_series(
    data: np.ndarray,
    k: int,
    reducer: "Reducer | None" = None,
    max_iterations: int = 50,
    seed: int = 0,
) -> ClusteringResult:
    """Cluster the rows of ``data`` into ``k`` groups.

    With ``reducer`` given, each series is replaced by its reconstruction
    before clustering (clustering under Dist_PAR); without it the raw series
    are clustered (the exact baseline).
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("kmeans expects a (count, n) array")
    if not 1 <= k <= data.shape[0]:
        raise ValueError("k must be in [1, count]")
    if reducer is not None:
        points = np.stack([reducer.reconstruct(rep) for rep in reduce_rows(reducer, data)])
    else:
        points = data

    rng = np.random.default_rng(seed)
    # k-means++ seeding
    centroids = [points[rng.integers(len(points))]]
    for _ in range(k - 1):
        d2 = np.min(
            [((points - c) ** 2).sum(axis=1) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(points[rng.integers(len(points))])
            continue
        centroids.append(points[rng.choice(len(points), p=d2 / total)])
    centroids = np.stack(centroids)

    labels = np.zeros(len(points), dtype=int)
    for iteration in range(1, max_iterations + 1):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if iteration > 1 and (new_labels == labels).all():
            break
        labels = new_labels
        for c in range(k):
            members = points[labels == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    inertia = float(((points - centroids[labels]) ** 2).sum())
    return ClusteringResult(
        labels=labels, centroids=centroids, inertia=inertia, n_iterations=iteration
    )
