"""k-NN classification on reduced representations (the paper's motivation).

GEMINI-style classification: the classifier retrieves the query's k nearest
neighbours through a :class:`repro.index.SeriesDatabase` (so retrieval cost
and pruning power reflect the chosen reduction method and index) and takes a
majority vote over their labels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..data.labeled import LabeledDataset
from ..index.knn import SeriesDatabase
from ..kinds import IndexKind
from ..reduction.base import Reducer

__all__ = ["ClassificationReport", "KNNClassifier"]


@dataclass(frozen=True)
class ClassificationReport:
    """Outcome of classifying a query set."""

    accuracy: float
    mean_pruning_power: float
    predictions: np.ndarray


class KNNClassifier:
    """Majority-vote k-NN over an indexed, reduced time series collection.

    ``metric='euclidean'`` (default) retrieves through the reduced-space
    index, as the paper does; ``metric='dtw'`` follows the UCR convention —
    banded DTW filtered by the LB_Keogh lower bound over the raw training
    series (pruning power then counts DTW computations avoided).
    """

    def __init__(
        self,
        reducer: Reducer,
        k: int = 1,
        index: "Union[IndexKind, str, None]" = IndexKind.DBCH,
        metric: str = "euclidean",
        band: "int | None" = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if metric not in ("euclidean", "dtw"):
            raise ValueError(f"unknown metric: {metric!r}")
        self.k = int(k)
        self.metric = metric
        self.band = band
        self.database = SeriesDatabase(reducer, index=index)
        self._labels: "np.ndarray | None" = None

    def fit(self, data: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        """Index the training collection and remember its labels."""
        data = np.asarray(data, dtype=float)
        labels = np.asarray(labels)
        if len(labels) != len(data):
            raise ValueError("one label per training series is required")
        self.database.ingest(data)
        self._labels = labels
        return self

    def predict_one(self, query: np.ndarray) -> "tuple[int, float]":
        """Return ``(predicted label, pruning power of the retrieval)``."""
        if self._labels is None:
            raise RuntimeError("fit the classifier before predicting")
        if self.metric == "dtw":
            ids, pruning = self._dtw_neighbours(query)
        else:
            result = self.database.knn(query, self.k)
            ids, pruning = result.ids, result.pruning_power
        votes = Counter(int(self._labels[i]) for i in ids)
        return votes.most_common(1)[0][0], pruning

    def _dtw_neighbours(self, query: np.ndarray) -> "tuple[list, float]":
        """UCR-style 1-NN loop: LB_Keogh-ordered candidates, DTW verification."""
        import heapq

        from ..distance.dtw import dtw, dtw_envelope, lb_keogh

        query = np.asarray(query, dtype=float)
        data = self.database.data
        envelope = dtw_envelope(query, self.band)
        bounds = sorted(
            (lb_keogh(query, row, self.band, envelope), i) for i, row in enumerate(data)
        )
        best: "list[tuple[float, int]]" = []  # max-heap via negation
        verified = 0
        for bound, i in bounds:
            if len(best) == self.k and bound >= -best[0][0]:
                break
            true = dtw(query, data[i], self.band)
            verified += 1
            heapq.heappush(best, (-true, i))
            if len(best) > self.k:
                heapq.heappop(best)
        ranked = sorted((-d, i) for d, i in best)
        return [i for _, i in ranked], verified / len(data)

    def evaluate(self, dataset: LabeledDataset) -> ClassificationReport:
        """Fit on the train split and classify the query split."""
        self.fit(dataset.data, dataset.labels)
        predictions, prunings = [], []
        for query in dataset.queries:
            label, pruning = self.predict_one(query)
            predictions.append(label)
            prunings.append(pruning)
        predictions = np.asarray(predictions)
        return ClassificationReport(
            accuracy=float(np.mean(predictions == dataset.query_labels)),
            mean_pruning_power=float(np.mean(prunings)),
            predictions=predictions,
        )
