"""Subsequence similarity search (Faloutsos et al. 1994 — GEMINI's problem).

The original setting the GEMINI framework was built for: given one long
sequence, find where a short query pattern occurs.  All sliding windows of
the query length are reduced and indexed; matches are retrieved with the
same filter-and-refine machinery as whole-series search, and overlapping
hits are de-duplicated to the locally best offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..index.knn import SeriesDatabase
from ..kinds import IndexKind
from ..reduction.base import Reducer
from ..reduction.paa import PAA
from .windows import sliding_windows, windows_overlap

__all__ = ["SubsequenceMatch", "SubsequenceIndex"]


@dataclass(frozen=True)
class SubsequenceMatch:
    """One located occurrence of the query pattern."""

    start: int
    distance: float


class SubsequenceIndex:
    """Sliding-window index over one long sequence.

    Args:
        window: query/pattern length the index answers for.
        stride: window sampling stride (1 = every offset; larger trades
            recall granularity for index size).
        reducer: reduction method for window representations
            (default ``PAA(12)``).
        index: underlying structure (an :class:`repro.IndexKind` or ``None``).
    """

    def __init__(
        self,
        window: int,
        stride: int = 1,
        reducer: "Optional[Reducer]" = None,
        index: "Union[IndexKind, str, None]" = IndexKind.DBCH,
    ):
        if window < 2:
            raise ValueError("window must be >= 2")
        if stride < 1:
            raise ValueError("stride must be positive")
        self.window = int(window)
        self.stride = int(stride)
        self.database = SeriesDatabase(reducer or PAA(12), index=index)
        self._starts: Optional[np.ndarray] = None

    def fit(self, sequence: np.ndarray) -> "SubsequenceIndex":
        """Index every window of ``sequence``."""
        windows, starts = sliding_windows(sequence, self.window, self.stride)
        self.database.ingest(windows)
        self._starts = starts
        return self

    # ------------------------------------------------------------------
    def search(self, pattern: np.ndarray, k: int = 3) -> "List[SubsequenceMatch]":
        """The ``k`` best non-overlapping occurrences of ``pattern``."""
        matches = self._raw_matches(pattern, oversample=4 * k)
        return self._deduplicate(matches)[:k]

    def range_search(self, pattern: np.ndarray, radius: float) -> "List[SubsequenceMatch]":
        """All non-overlapping occurrences within Euclidean ``radius``."""
        result = self.database.range_query(np.asarray(pattern, dtype=float), radius)
        matches = [
            SubsequenceMatch(start=int(self._starts[i]), distance=d)
            for i, d in zip(result.ids, result.distances)
        ]
        return self._deduplicate(matches)

    # ------------------------------------------------------------------
    def _raw_matches(self, pattern: np.ndarray, oversample: int) -> "List[SubsequenceMatch]":
        if self._starts is None:
            raise RuntimeError("fit the index before searching")
        pattern = np.asarray(pattern, dtype=float)
        if pattern.shape[0] != self.window:
            raise ValueError(
                f"pattern length {pattern.shape[0]} does not match window {self.window}"
            )
        result = self.database.knn(pattern, min(oversample, len(self.database.entries)))
        return [
            SubsequenceMatch(start=int(self._starts[i]), distance=d)
            for i, d in zip(result.ids, result.distances)
        ]

    def _deduplicate(self, matches: "List[SubsequenceMatch]") -> "List[SubsequenceMatch]":
        """Keep the best match per overlapping run of offsets."""
        kept: "List[SubsequenceMatch]" = []
        for match in sorted(matches, key=lambda m: m.distance):
            if not any(windows_overlap(match.start, k.start, self.window) for k in kept):
                kept.append(match)
        return kept
