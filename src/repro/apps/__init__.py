"""Application-level workloads the paper's introduction motivates:
classification, motif discovery, anomaly (discord) detection, clustering,
and semantic segmentation — all built on the reduced representations."""

from .classification import ClassificationReport, KNNClassifier
from .clustering import ClusteringResult, kmeans_time_series
from .discords import Discord, find_discord
from .forecasting import AnalogForecaster, Forecast
from .hierarchy import Dendrogram, agglomerative_cluster
from .motifs import Motif, find_motifs
from .segmentation import ChangePoint, detect_change_points
from .subsequence import SubsequenceIndex, SubsequenceMatch
from .windows import sliding_windows, windows_overlap

__all__ = [
    "KNNClassifier",
    "ClassificationReport",
    "Motif",
    "find_motifs",
    "Discord",
    "find_discord",
    "ClusteringResult",
    "kmeans_time_series",
    "ChangePoint",
    "detect_change_points",
    "SubsequenceIndex",
    "SubsequenceMatch",
    "AnalogForecaster",
    "Forecast",
    "Dendrogram",
    "agglomerative_cluster",
    "sliding_windows",
    "windows_overlap",
]
