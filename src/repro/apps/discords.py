"""Discord (anomaly) discovery: the subsequence farthest from its neighbours.

The time series *discord* is the window whose nearest non-overlapping
neighbour is farthest away — the classic anomaly-detection formulation the
paper's introduction cites.  The search is HOT-SAX-shaped: an outer loop over
candidate windows, an inner nearest-neighbour scan ordered by the cheap
representation-space distance, with two early exits (abandon a candidate as
soon as any neighbour lands under the best-so-far; stop the inner scan when
the lower bound exceeds the current candidate's running minimum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distance.euclidean import euclidean
from ..distance.segmentwise import aligned_distance
from ..reduction.base import Reducer
from ..reduction.paa import PAA
from .windows import sliding_windows, windows_overlap

__all__ = ["Discord", "find_discord"]


@dataclass(frozen=True)
class Discord:
    """The discovered discord."""

    start: int
    window: int
    nn_distance: float
    nn_start: int
    n_verified: int  # raw distance computations spent (pruning accounting)


def find_discord(
    series: np.ndarray,
    window: int,
    stride: int = 1,
    reducer: "Reducer | None" = None,
) -> Discord:
    """Find the top discord of ``series`` at the given window length."""
    reducer = reducer or PAA(12)
    windows, starts = sliding_windows(series, window, stride)
    if len(windows) < 2:
        raise ValueError("series too short for discord discovery at this window")
    representations = [reducer.transform(w) for w in windows]

    best_start = best_nn_start = -1
    best_nn = -np.inf
    verified = 0
    for i in range(len(windows)):
        # order neighbours by the representation bound: true neighbours come
        # first, so the abandon threshold triggers quickly
        bounds = [
            (aligned_distance(representations[i], representations[j]), j)
            for j in range(len(windows))
            if not windows_overlap(starts[i], starts[j], window)
        ]
        if not bounds:
            continue
        bounds.sort()
        nn = np.inf
        nn_j = bounds[0][1]
        for bound, j in bounds:
            if bound >= nn:
                break  # no closer neighbour can exist below this bound
            true = euclidean(windows[i], windows[j])
            verified += 1
            if true < nn:
                nn, nn_j = true, j
            if nn <= best_nn:
                break  # candidate i cannot beat the best discord
        if nn > best_nn and np.isfinite(nn):
            best_nn = nn
            best_start = int(starts[i])
            best_nn_start = int(starts[nn_j])
    return Discord(
        start=best_start,
        window=window,
        nn_distance=float(best_nn),
        nn_start=best_nn_start,
        n_verified=verified,
    )
