"""Discord (anomaly) discovery: the subsequence farthest from its neighbours.

The time series *discord* is the window whose nearest non-overlapping
neighbour is farthest away — the classic anomaly-detection formulation the
paper's introduction cites.  The search is HOT-SAX-shaped: an outer loop over
candidate windows, an inner nearest-neighbour scan through the shared
:func:`repro.apps.discord_core.nearest_nonoverlapping` core — ordered by the
cheap representation-space distance, with two early exits (abandon a
candidate as soon as any neighbour lands under the best-so-far; stop the
inner scan when the lower bound exceeds the current candidate's running
minimum).  The online streaming variant
(:class:`repro.continuous.OnlineDiscordScorer`) drives the same core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distance.euclidean import euclidean
from ..distance.segmentwise import aligned_distance
from ..reduction.base import Reducer, reduce_rows
from ..reduction.paa import PAA
from .discord_core import nearest_nonoverlapping
from .windows import sliding_windows, windows_overlap

__all__ = ["Discord", "find_discord"]


@dataclass(frozen=True)
class Discord:
    """The discovered discord."""

    start: int
    window: int
    nn_distance: float
    nn_start: int
    n_verified: int  # raw distance computations spent (pruning accounting)


def find_discord(
    series: np.ndarray,
    window: int,
    stride: int = 1,
    reducer: "Reducer | None" = None,
) -> Discord:
    """Find the top discord of ``series`` at the given window length."""
    reducer = reducer or PAA(12)
    windows, starts = sliding_windows(series, window, stride)
    if len(windows) < 2:
        raise ValueError("series too short for discord discovery at this window")
    representations = reduce_rows(reducer, windows)

    best_start = best_nn_start = -1
    best_nn = -np.inf
    verified = 0
    for i in range(len(windows)):
        # order neighbours by the representation bound: true neighbours come
        # first, so the abandon threshold triggers quickly
        bounds = [
            (aligned_distance(representations[i], representations[j]), j)
            for j in range(len(windows))
            if not windows_overlap(starts[i], starts[j], window)
        ]
        nn, nn_j, n_verified = nearest_nonoverlapping(
            bounds,
            lambda j: euclidean(windows[i], windows[j]),
            stop_at=best_nn,
        )
        verified += n_verified
        if nn > best_nn and np.isfinite(nn):
            best_nn = nn
            best_start = int(starts[i])
            best_nn_start = int(starts[nn_j])
    return Discord(
        start=best_start,
        window=window,
        nn_distance=float(best_nn),
        nn_start=best_nn_start,
        n_verified=verified,
    )
