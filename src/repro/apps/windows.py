"""Sliding-window utilities shared by the subsequence-level tasks."""

from __future__ import annotations

import numpy as np

from ..data.normalize import z_normalize

__all__ = ["sliding_windows", "windows_overlap"]


def sliding_windows(
    series: np.ndarray, window: int, stride: int = 1, normalize: bool = False
) -> "tuple[np.ndarray, np.ndarray]":
    """Extract windows of length ``window`` every ``stride`` points.

    Returns ``(windows, starts)`` where ``windows`` has shape
    ``(count, window)`` and ``starts`` holds each window's start index.
    """
    series = np.asarray(series, dtype=float)
    if window < 2 or window > series.shape[0]:
        raise ValueError("window must be in [2, len(series)]")
    if stride < 1:
        raise ValueError("stride must be positive")
    starts = np.arange(0, series.shape[0] - window + 1, stride)
    windows = np.stack([series[s : s + window] for s in starts])
    if normalize:
        windows = np.stack([z_normalize(w) for w in windows])
    return windows, starts


def windows_overlap(start_a: int, start_b: int, window: int) -> bool:
    """Trivial-match test: windows sharing any point are not independent."""
    return abs(int(start_a) - int(start_b)) < window
