"""Agglomerative clustering over reduced representations.

Complements the k-means of :mod:`repro.apps.clustering`: average-linkage
agglomeration driven purely by the representation distance (Dist_PAR for
segment methods), so the raw series never need to be touched once reduced —
the "cluster in the reduced space" workflow the paper's motivation implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..distance.dist_par import dist_par
from ..reduction.base import Reducer, reduce_rows

__all__ = ["Dendrogram", "agglomerative_cluster"]


@dataclass(frozen=True)
class Dendrogram:
    """Result of an agglomerative run.

    Attributes:
        labels: flat cluster assignment at the requested cluster count.
        merges: the merge history as ``(cluster_a, cluster_b, distance)``
            tuples in merge order (clusters >= count are merge products, as
            in scipy's linkage convention).
    """

    labels: np.ndarray
    merges: "List[tuple[int, int, float]]"

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0


def agglomerative_cluster(
    data: np.ndarray,
    n_clusters: int,
    reducer: "Optional[Reducer]" = None,
    distance: "Optional[Callable]" = None,
) -> Dendrogram:
    """Average-linkage agglomeration of the rows of ``data``.

    With ``reducer`` given, rows are reduced first and distances are
    Dist_PAR between representations; otherwise ``distance`` (default:
    Euclidean on raw rows) drives the linkage.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError("agglomerative_cluster expects a non-empty (count, n) array")
    count = data.shape[0]
    if not 1 <= n_clusters <= count:
        raise ValueError("n_clusters must be in [1, count]")

    if reducer is not None:
        items = reduce_rows(reducer, data)
        metric = dist_par
    else:
        items = list(data)
        metric = distance or (lambda a, b: float(np.linalg.norm(a - b)))

    # pairwise distance matrix (symmetric)
    matrix = np.zeros((count, count))
    for i in range(count):
        for j in range(i + 1, count):
            matrix[i, j] = matrix[j, i] = metric(items[i], items[j])

    # average linkage via the Lance-Williams update
    active = list(range(count))
    sizes = {i: 1 for i in range(count)}
    members = {i: [i] for i in range(count)}
    distances = {
        (i, j): matrix[i, j] for i in range(count) for j in range(i + 1, count)
    }

    def pair_key(a: int, b: int) -> "tuple[int, int]":
        return (a, b) if a < b else (b, a)

    merges: "List[tuple[int, int, float]]" = []
    next_id = count
    while len(active) > n_clusters:
        (a, b), best = min(
            (
                (pair_key(x, y), distances[pair_key(x, y)])
                for idx, x in enumerate(active)
                for y in active[idx + 1 :]
            ),
            key=lambda kv: kv[1],
        )
        merges.append((a, b, best))
        merged = next_id
        next_id += 1
        sizes[merged] = sizes[a] + sizes[b]
        members[merged] = members[a] + members[b]
        for other in active:
            if other in (a, b):
                continue
            da = distances[pair_key(a, other)]
            db = distances[pair_key(b, other)]
            distances[pair_key(merged, other)] = (
                sizes[a] * da + sizes[b] * db
            ) / sizes[merged]
        active = [x for x in active if x not in (a, b)] + [merged]

    labels = np.empty(count, dtype=int)
    for label, cluster in enumerate(active):
        for member in members[cluster]:
            labels[member] = label
    return Dendrogram(labels=labels, merges=merges)
