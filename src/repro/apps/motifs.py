"""Motif discovery: the closest pair of non-overlapping subsequences.

One of the high-level tasks the paper's introduction motivates.  The search
follows the GEMINI recipe at the pair level: all window pairs are ordered by
their cheap representation-space distance (a lower bound for equal-length
layouts), then verified with true Euclidean distances until the next pair's
bound exceeds the best verified distance — at which point every remaining
pair is provably worse and the scan stops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..distance.euclidean import euclidean
from ..distance.segmentwise import aligned_distance
from ..reduction.base import Reducer, reduce_rows
from ..reduction.paa import PAA
from .windows import sliding_windows, windows_overlap

__all__ = ["Motif", "find_motifs"]


@dataclass(frozen=True)
class Motif:
    """One discovered motif pair."""

    start_a: int
    start_b: int
    window: int
    distance: float


def find_motifs(
    series: np.ndarray,
    window: int,
    top_k: int = 1,
    stride: int = 1,
    reducer: "Reducer | None" = None,
) -> "List[Motif]":
    """Return the ``top_k`` closest non-overlapping subsequence pairs.

    Args:
        series: the long series to mine.
        window: motif length.
        top_k: number of (mutually non-overlapping) motif pairs to return.
        stride: window sampling stride (1 = every position).
        reducer: equal-length reducer used for the pre-filter
            (default: ``PAA(12)``); its aligned distance must lower-bound
            the Euclidean distance, which holds for PAA/PLA.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    reducer = reducer or PAA(12)
    windows, starts = sliding_windows(series, window, stride)
    representations = reduce_rows(reducer, windows)

    pairs = []
    for i in range(len(windows)):
        for j in range(i + 1, len(windows)):
            if windows_overlap(starts[i], starts[j], window):
                continue
            bound = aligned_distance(representations[i], representations[j])
            pairs.append((bound, i, j))
    pairs.sort()

    motifs: "List[Motif]" = []
    best = np.inf
    candidates: "List[Motif]" = []
    for bound, i, j in pairs:
        if bound > best and len(candidates) >= top_k:
            break  # every remaining pair lower-bounds above the worst kept
        true = euclidean(windows[i], windows[j])
        candidates.append(
            Motif(start_a=int(starts[i]), start_b=int(starts[j]), window=window, distance=true)
        )
        candidates.sort(key=lambda m: m.distance)
        candidates = candidates[: max(top_k * 4, 8)]
        best = candidates[min(top_k, len(candidates)) - 1].distance

    # keep the best pairs whose windows do not overlap previously chosen ones
    chosen: "List[Motif]" = []
    for motif in sorted(candidates, key=lambda m: m.distance):
        clash = any(
            windows_overlap(motif.start_a, kept.start_a, window)
            and windows_overlap(motif.start_b, kept.start_b, window)
            for kept in chosen
        )
        if not clash:
            chosen.append(motif)
        if len(chosen) == top_k:
            break
    return chosen
