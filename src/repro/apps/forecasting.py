"""k-NN analog forecasting over the subsequence index.

"Prediction" is the remaining task on the paper's motivation list.  The
classic analog method fits here directly: find the historical windows most
similar to the most recent observations (through the reduced-representation
subsequence index), then average what followed each of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reduction.base import Reducer
from .subsequence import SubsequenceIndex

__all__ = ["Forecast", "AnalogForecaster"]


@dataclass(frozen=True)
class Forecast:
    """A horizon of predicted values plus the analogs that produced it."""

    values: np.ndarray
    analog_starts: "list[int]"
    analog_distances: "list[float]"


class AnalogForecaster:
    """Forecast a series' continuation from its own nearest historical analogs.

    Args:
        window: context length matched against history.
        horizon: how many future points to predict.
        k: number of analogs averaged (inverse-distance weighted).
        stride: subsequence sampling stride of the history index.
        reducer: reduction method for the window index (default PAA).
    """

    def __init__(
        self,
        window: int,
        horizon: int,
        k: int = 3,
        stride: int = 1,
        reducer: "Reducer | None" = None,
    ):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.window = int(window)
        self.horizon = int(horizon)
        self.k = int(k)
        self.stride = int(stride)
        self._reducer = reducer
        self._history: "np.ndarray | None" = None
        self._index: "SubsequenceIndex | None" = None

    def fit(self, history: np.ndarray) -> "AnalogForecaster":
        """Index the history; only windows with a full future horizon count."""
        history = np.asarray(history, dtype=float)
        usable = history.shape[0] - self.horizon
        if usable < self.window + 1:
            raise ValueError("history too short for this window and horizon")
        self._history = history
        self._index = SubsequenceIndex(
            window=self.window, stride=self.stride, reducer=self._reducer
        ).fit(history[:usable])
        return self

    def forecast(self, context: "np.ndarray | None" = None) -> Forecast:
        """Predict the next ``horizon`` values.

        ``context`` defaults to the last ``window`` points of the history.
        """
        if self._history is None or self._index is None:
            raise RuntimeError("fit the forecaster before forecasting")
        if context is None:
            context = self._history[-self.window :]
        context = np.asarray(context, dtype=float)
        if context.shape[0] != self.window:
            raise ValueError(f"context must have length {self.window}")

        matches = self._index.search(context, k=self.k)
        if not matches:
            raise RuntimeError("no analog windows found")
        futures, weights = [], []
        for match in matches:
            start = match.start + self.window
            futures.append(self._history[start : start + self.horizon])
            weights.append(1.0 / (match.distance + 1e-9))
        weights = np.asarray(weights)
        weights /= weights.sum()
        values = np.average(np.stack(futures), axis=0, weights=weights)
        return Forecast(
            values=values,
            analog_starts=[m.start for m in matches],
            analog_distances=[m.distance for m in matches],
        )
