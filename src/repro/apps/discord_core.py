"""The windowed nearest-neighbour core shared by discord search paths.

Both the batch discord scan (:func:`repro.apps.find_discord`) and the
online scorer (:class:`repro.continuous.OnlineDiscordScorer`) answer the
same inner question: given one candidate window, how far away is its
nearest *non-overlapping* neighbour?  The HOT-SAX-shaped answer lives
here once — order the neighbours by a cheap lower bound, verify true
distances in that order, stop the scan as soon as the next bound cannot
beat the running minimum, and (optionally) abandon the candidate early
once its minimum falls under a caller-supplied threshold.

Soundness requires the caller's bounds to *lower-bound* the true
distance: the batch path uses the aligned representation-space distance
(a true lower bound for equal-budget PAA-family reductions), while the
online scorer derives a triangle-inequality bound from StreamingSAPLA
reconstructions and their residuals.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

__all__ = ["nearest_nonoverlapping"]


def nearest_nonoverlapping(
    candidates: "Sequence[Tuple[float, int]]",
    verify: "Callable[[int], float]",
    stop_at: "float | None" = None,
) -> "Tuple[float, int, int]":
    """One candidate window's nearest-neighbour scan over ordered bounds.

    Args:
        candidates: ``(lower_bound, neighbour_key)`` pairs.  They are
            sorted here (ascending bound, key breaking ties) so true
            neighbours are verified first and the bound cut-off triggers
            as early as possible.
        verify: maps a neighbour key to the true distance (one raw
            distance computation; the expensive call being minimised).
        stop_at: optional early-abandon threshold — once the running
            minimum is ``<= stop_at`` the candidate can no longer matter
            to the caller (it cannot beat the best discord so far / it
            is already under the alert threshold), so the scan stops.

    Returns:
        ``(nn, nn_key, n_verified)`` — the nearest true distance found
        (exact unless the scan abandoned via ``stop_at``), the neighbour
        key it belongs to, and how many verifications were spent.
        ``(inf, -1, 0)`` when there are no candidates.
    """
    ordered = sorted(candidates)
    if not ordered:
        return float("inf"), -1, 0
    nn = np.inf
    nn_key = ordered[0][1]
    verified = 0
    for bound, key in ordered:
        if bound >= nn:
            break  # no closer neighbour can exist below this bound
        true = float(verify(key))
        verified += 1
        if true < nn:
            nn, nn_key = true, key
        if stop_at is not None and nn <= stop_at:
            break  # the candidate can no longer matter to the caller
    return float(nn), int(nn_key), verified
