"""Typed constructor vocabulary: index kinds and adaptive distance modes.

Historically :class:`repro.index.SeriesDatabase` took stringly-typed
``index="dbch"`` / ``distance_mode="par"`` arguments, and a typo surfaced only
deep inside the first query.  The enums here are the typed replacements:
``IndexKind`` names the index structures the paper evaluates and
``DistanceMode`` the adaptive-method query bounds (paper Sec. 6).  Both are
``str`` subclasses, so existing comparisons against the old literals keep
working and the values serialise unchanged into ``config.json``.

Plain strings are still accepted everywhere — the coercers below translate
them eagerly (raising on unknown values instead of failing mid-query) and
emit a :class:`DeprecationWarning` steering callers to the enums.
"""

from __future__ import annotations

import warnings
from enum import Enum
from typing import Optional, Union

__all__ = ["IndexKind", "DistanceMode", "coerce_index_kind", "coerce_distance_mode"]


class IndexKind(str, Enum):
    """Index structure backing a :class:`repro.index.SeriesDatabase`.

    ``DBCH`` is the paper's distance-based covering tree, ``RTREE`` the
    Guttman baseline, and ``NONE`` the tree-less GEMINI filtered scan.
    """

    DBCH = "dbch"
    RTREE = "rtree"
    NONE = "none"

    def __str__(self) -> str:  # keep f-strings printing 'dbch', not the member
        return self.value


class DistanceMode(str, Enum):
    """Adaptive-method query-bound mode (see :func:`repro.distance.make_suite`).

    ``PAR`` is Dist_PAR (the paper's tight measure), ``LB`` is Dist_LB (the
    unconditional lower bound) and ``AE`` is Dist_AE (tight but not
    lower-bounding).  Equal-length and symbolic methods ignore the mode.
    """

    PAR = "par"
    LB = "lb"
    AE = "ae"

    def __str__(self) -> str:
        return self.value


def coerce_index_kind(value: "Union[IndexKind, str, None]") -> "Optional[IndexKind]":
    """Normalise an index argument to an :class:`IndexKind` (or ``None``).

    ``None`` and ``IndexKind.NONE`` both mean "no tree" and normalise to
    ``None``.  Plain strings are accepted for backwards compatibility but
    emit a :class:`DeprecationWarning`; unknown values raise ``ValueError``
    immediately instead of at query time.
    """
    if value is None:
        return None
    if isinstance(value, IndexKind):
        return None if value is IndexKind.NONE else value
    if isinstance(value, str):
        try:
            kind = IndexKind(value)
        except ValueError:
            raise ValueError(
                f"unknown index kind: {value!r} (expected one of "
                f"{[k.value for k in IndexKind]} or None)"
            ) from None
        warnings.warn(
            f"passing index={value!r} as a string is deprecated; "
            f"use repro.IndexKind.{kind.name}",
            DeprecationWarning,
            stacklevel=3,
        )
        return None if kind is IndexKind.NONE else kind
    raise ValueError(f"unknown index kind: {value!r}")


def coerce_distance_mode(value: "Union[DistanceMode, str]") -> DistanceMode:
    """Normalise a distance-mode argument to a :class:`DistanceMode`.

    Plain strings are accepted but deprecated; unknown values raise
    ``ValueError`` eagerly so a typo cannot survive until the first
    adaptive-method query.
    """
    if isinstance(value, DistanceMode):
        return value
    if isinstance(value, str):
        try:
            mode = DistanceMode(value)
        except ValueError:
            raise ValueError(
                f"unknown adaptive distance mode: {value!r} (expected one of "
                f"{[m.value for m in DistanceMode]})"
            ) from None
        warnings.warn(
            f"passing distance_mode={value!r} as a string is deprecated; "
            f"use repro.DistanceMode.{mode.name}",
            DeprecationWarning,
            stacklevel=3,
        )
        return mode
    raise ValueError(f"unknown adaptive distance mode: {value!r}")
