"""Continuous queries: standing subscriptions over streaming ingest.

Register a query once — k-NN, range, subsequence match, or an online
anomaly watch — and receive incremental :class:`Notification` deltas as
the write-ahead log advances, instead of polling one-shot queries.  See
``docs/continuous.md`` for the architecture, wire-protocol push frames,
backpressure semantics and delivery guarantees.

* :mod:`repro.continuous.queries` — the standing-query vocabulary and the
  typed notification delta;
* :mod:`repro.continuous.registry` — durable, replayable subscription
  state (a checksummed log beside the data WAL);
* :mod:`repro.continuous.evaluator` — the incremental evaluator routing
  mutations to affected subscriptions;
* :mod:`repro.continuous.anomaly` — the StreamingSAPLA-driven online
  discord scorer behind :class:`AnomalyWatch`.
"""

from .anomaly import AnomalyAlert, OnlineDiscordScorer
from .evaluator import ContinuousEvaluator
from .queries import (
    AnomalyWatch,
    KnnWatch,
    Notification,
    RangeWatch,
    StandingQuery,
    SubsequenceWatch,
    query_from_payload,
)
from .registry import SUBSCRIPTIONS_FILENAME, SubscriptionRegistry, SubscriptionState

__all__ = [
    "AnomalyAlert",
    "AnomalyWatch",
    "ContinuousEvaluator",
    "KnnWatch",
    "Notification",
    "OnlineDiscordScorer",
    "RangeWatch",
    "StandingQuery",
    "SubscriptionRegistry",
    "SubscriptionState",
    "SUBSCRIPTIONS_FILENAME",
    "SubsequenceWatch",
    "query_from_payload",
]
