"""Online discord scoring over an unbounded stream.

The batch discord search (:func:`repro.apps.find_discord`) asks, per
window, how far away its nearest non-overlapping neighbour is; the top
discord is the window maximising that distance.  Online, the question
inverts into an alert predicate with *left-discord* semantics: as each
window completes, score it against the **prior** windows only (the future
is unknown) and alert when even the closest predecessor is farther than a
threshold — the window is unlike everything seen before it.

The scan itself is the shared HOT-SAX-shaped core
(:func:`repro.apps.discord_core.nearest_nonoverlapping`).  The cheap
ordering bound comes from the source paper's streaming segmenter: each
window is reduced by a fresh :class:`repro.core.StreamingSAPLA` pass, and
for reconstructions ``r_i``/``r_j`` with residuals ``e_i``/``e_j`` the
triangle inequality gives the true lower bound

``d(w_i, w_j) >= max(0, ||r_i - r_j|| - e_i - e_j)``

so predecessors are verified nearest-first and the scan abandons a window
as soon as its running minimum drops to the alert threshold.  History is
bounded (``history`` windows), so memory stays O(history × window).

Scoring is deterministic in the consumed values: re-feeding the same
stream replays the same alerts with the same indices, which is what lets
crash recovery re-derive an anomaly subscription's state exactly
(see :class:`repro.continuous.ContinuousEvaluator`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Tuple

import numpy as np

from ..apps.discord_core import nearest_nonoverlapping
from ..apps.windows import windows_overlap
from ..core.streaming import StreamingSAPLA
from ..distance.euclidean import euclidean

__all__ = ["AnomalyAlert", "OnlineDiscordScorer"]


@dataclass(frozen=True)
class AnomalyAlert:
    """One raised anomaly: a window with no close predecessor.

    ``score`` is the distance to the nearest non-overlapping prior window
    (exact — the scan only abandons *below* the threshold, never above);
    ``nn_start`` locates that nearest predecessor; ``n_verified`` counts
    the raw distance computations the bound ordering could not prune.
    """

    start: int
    window: int
    score: float
    nn_start: int
    n_verified: int

    def to_payload(self) -> dict:
        """JSON-safe dict — the ``alert`` field of a notification."""
        return {
            "start": int(self.start),
            "window": int(self.window),
            "score": float(self.score),
            "nn_start": int(self.nn_start),
            "n_verified": int(self.n_verified),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AnomalyAlert":
        return cls(
            start=int(payload["start"]),
            window=int(payload["window"]),
            score=float(payload["score"]),
            nn_start=int(payload["nn_start"]),
            n_verified=int(payload["n_verified"]),
        )


class _Seen:
    """One scored window kept in the bounded history."""

    __slots__ = ("start", "raw", "recon", "err")

    def __init__(self, start: int, raw: np.ndarray, recon: np.ndarray, err: float):
        self.start = start
        self.raw = raw
        self.recon = recon
        self.err = err


class OnlineDiscordScorer:
    """Score completed stream windows against their predecessors.

    Args:
        window: window length scored (>= 2).
        threshold: alert when the nearest non-overlapping predecessor is
            farther than this Euclidean distance.
        stride: offset between consecutive scored windows.
        max_segments: :class:`repro.core.StreamingSAPLA` budget per window.
        history: how many scored windows stay comparable (memory bound).
    """

    def __init__(
        self,
        window: int,
        threshold: float,
        stride: int = 1,
        max_segments: int = 8,
        history: int = 64,
    ):
        if window < 2:
            raise ValueError("window must be >= 2")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if stride < 1:
            raise ValueError("stride must be positive")
        if history < 1:
            raise ValueError("history must be >= 1")
        self.window = int(window)
        self.threshold = float(threshold)
        self.stride = int(stride)
        self.max_segments = int(max_segments)
        self.history = int(history)
        self._buffer: "List[float]" = []
        self._buffer_start = 0  # global index of _buffer[0]
        self._next_start = 0  # start of the next window to score
        self._seen: "Deque[_Seen]" = deque(maxlen=history)
        self.n_points = 0
        self.n_alerts = 0

    # ------------------------------------------------------------------
    def extend(self, values: "Iterable[float]") -> "List[AnomalyAlert]":
        """Consume a chunk of stream values; return any alerts it raised."""
        chunk = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=float
        ).ravel()
        if chunk.size == 0:
            return []
        if not np.isfinite(chunk).all():
            raise ValueError("stream values must be finite")
        self._buffer.extend(chunk.tolist())
        self.n_points += int(chunk.size)
        alerts: "List[AnomalyAlert]" = []
        while self.n_points >= self._next_start + self.window:
            start = self._next_start
            offset = start - self._buffer_start
            raw = np.array(self._buffer[offset : offset + self.window], dtype=float)
            alert = self._score(start, raw)
            if alert is not None:
                alerts.append(alert)
            self._next_start += self.stride
            drop = self._next_start - self._buffer_start
            if drop > 0:
                del self._buffer[:drop]
                self._buffer_start = self._next_start
        return alerts

    def append(self, value: float) -> "List[AnomalyAlert]":
        """Consume a single stream value (thin wrapper over :meth:`extend`)."""
        return self.extend([value])

    # ------------------------------------------------------------------
    def _score(self, start: int, raw: np.ndarray) -> "Optional[AnomalyAlert]":
        reducer = StreamingSAPLA(self.max_segments)
        reducer.extend(raw)
        recon = reducer.reconstruct()
        err = float(np.linalg.norm(raw - recon))
        prior = list(self._seen)
        candidates: "List[Tuple[float, int]]" = [
            (max(0.0, float(np.linalg.norm(recon - seen.recon)) - err - seen.err), i)
            for i, seen in enumerate(prior)
            if not windows_overlap(start, seen.start, self.window)
        ]
        self._seen.append(_Seen(start, raw, recon, err))
        if not candidates:
            return None  # nothing comparable yet: no left discord exists
        nn, nn_i, verified = nearest_nonoverlapping(
            candidates,
            lambda i: euclidean(raw, prior[i].raw),
            stop_at=self.threshold,
        )
        if nn <= self.threshold:
            return None
        self.n_alerts += 1
        return AnomalyAlert(
            start=int(start),
            window=self.window,
            score=float(nn),
            nn_start=int(prior[nn_i].start),
            n_verified=int(verified),
        )

    def __repr__(self) -> str:
        return (
            f"OnlineDiscordScorer(window={self.window}, threshold={self.threshold}, "
            f"n_points={self.n_points}, n_alerts={self.n_alerts})"
        )
