"""Durable subscription state: a checksummed log beside the data WAL.

Standing subscriptions must survive exactly what ingest survives — a
SIGKILL at any instant.  The registry therefore persists every
subscription-visible event to an append-only log with the same structural
guarantees as :mod:`repro.lifecycle.wal`:

``file   = magic (8 bytes) · record*``
``record = length u32 LE · crc32(payload) u32 LE · payload``
``payload = UTF-8 JSON object``

Three record ops exist: ``subscribe`` (the standing query, verbatim, plus
the ingest cursor it starts from), ``unsubscribe``, and ``ack`` — the
delivered frontier of one notification (seq, generation and the per-kind
result state).  Acks are written *after* the sink delivers, so the log's
replayed state is always *at or behind* what the consumer saw; recovery
(:meth:`repro.continuous.ContinuousEvaluator.resync`) re-runs each query
from scratch and re-emits the delta against the acked frontier — at-least-
once delivery, de-duplicated by ``seq`` on the consumer side (see
``docs/continuous.md``).

Replay is torn-tail tolerant: a record cut mid-write by a crash fails its
length or CRC check, replay stops there, and reopening truncates the torn
tail so appends never interleave with garbage.  A registry opened without
a path keeps the same state in memory only (tests, ephemeral servers).
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass, field
from threading import RLock
from typing import Dict, Optional, Union

from .. import obs
from ..lifecycle.wal import DurabilityOptions, FsyncPolicy
from .queries import StandingQuery, query_from_payload

__all__ = ["SubscriptionRegistry", "SubscriptionState", "SUBSCRIPTIONS_FILENAME"]

PathLike = Union[str, pathlib.Path]

#: identifies a subscription log and its format version.
MAGIC = b"RPSUB\x00\x01\n"

#: default subscription-log filename inside a database directory.
SUBSCRIPTIONS_FILENAME = "subscriptions.log"

_PREFIX = struct.Struct("<II")  # payload length, crc32(payload)

#: guards replay against a corrupt length prefix claiming gigabytes.
_MAX_PAYLOAD = 16 * 1024 * 1024


@dataclass
class SubscriptionState:
    """One subscription's replayable state.

    ``seq`` is the last *acknowledged* notification sequence number;
    ``state`` is the per-kind acked frontier (``ids``/``distances`` for
    knn and range watches, offset matches for subsequence watches, the
    stream cursor and alert count for anomaly watches).  ``from_row`` is
    the global row count at subscribe time — stream-shaped watches
    (subsequence, anomaly) only see rows inserted at or after it.
    """

    sid: str
    query: StandingQuery
    seq: int = 0
    generation: object = None
    from_row: int = 0
    state: dict = field(default_factory=dict)


class SubscriptionRegistry:
    """Replayable registry of standing subscriptions.

    Args:
        path: log file location; ``None`` keeps the registry in memory
            only (no crash durability).
        durability: a :class:`repro.lifecycle.DurabilityOptions` — only
            the fsync policy applies here (``wal=False`` still logs;
            subscriptions are control-plane state, not bulk ingest).
    """

    def __init__(
        self,
        path: "Optional[PathLike]" = None,
        durability: "Optional[DurabilityOptions]" = None,
    ):
        self._durability = durability if durability is not None else DurabilityOptions()
        self._path = pathlib.Path(path) if path is not None else None
        self._subs: "Dict[str, SubscriptionState]" = {}
        self._counter = 0
        self._lock = RLock()
        self._file = None
        self._unsynced = 0
        if self._path is not None:
            self._open()

    # -- construction ----------------------------------------------------
    def _open(self) -> None:
        exists = self._path.exists()
        if exists:
            valid_end = self._replay()
            self._file = open(self._path, "r+b")
            self._file.truncate(valid_end)  # drop any torn tail
            self._file.seek(valid_end)
        else:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self._path, "w+b")
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())

    def _replay(self) -> int:
        """Rebuild state from the log; returns the last valid byte offset."""
        with obs.span("continuous.replay"):
            blob = self._path.read_bytes()
            if len(blob) < len(MAGIC) or blob[: len(MAGIC)] != MAGIC:
                raise ValueError(f"{self._path} is not a subscription log (bad magic)")
            offset = len(MAGIC)
            while True:
                if offset + _PREFIX.size > len(blob):
                    break
                length, crc = _PREFIX.unpack_from(blob, offset)
                if length > _MAX_PAYLOAD:
                    break  # corrupt prefix: treat as torn tail
                start = offset + _PREFIX.size
                payload = blob[start : start + length]
                if len(payload) != length or zlib.crc32(payload) != crc:
                    break  # torn or corrupt record
                try:
                    record = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break
                self._apply(record)
                offset = start + length
            return offset

    def _apply(self, record: dict) -> None:
        op = record.get("op")
        sid = record.get("sid")
        if op == "subscribe":
            self._subs[sid] = SubscriptionState(
                sid=sid,
                query=query_from_payload(record["query"]),
                from_row=int(record.get("from_row", 0)),
            )
            self._counter = max(self._counter, int(record.get("counter", 0)))
        elif op == "unsubscribe":
            self._subs.pop(sid, None)
        elif op == "ack" and sid in self._subs:
            sub = self._subs[sid]
            sub.seq = int(record["seq"])
            generation = record.get("generation")
            sub.generation = (
                tuple(generation) if isinstance(generation, list) else generation
            )
            sub.state = record.get("state", {})

    # -- the append path -------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._file is None:
            return
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._file.write(_PREFIX.pack(len(payload), zlib.crc32(payload)) + payload)
        self._file.flush()
        policy = self._durability.fsync
        if policy is FsyncPolicy.ALWAYS:
            os.fsync(self._file.fileno())
        elif policy is FsyncPolicy.BATCH:
            self._unsynced += 1
            if self._unsynced >= self._durability.batch_records:
                os.fsync(self._file.fileno())
                self._unsynced = 0

    # -- the registry surface ---------------------------------------------
    def subscribe(
        self, query: StandingQuery, from_row: int = 0, sid: "Optional[str]" = None
    ) -> str:
        """Register one standing query; returns its subscription id."""
        with self._lock:
            self._counter += 1
            if sid is None:
                sid = f"sub-{self._counter:06d}"
            if sid in self._subs:
                raise ValueError(f"subscription id {sid!r} already registered")
            self._subs[sid] = SubscriptionState(
                sid=sid, query=query, from_row=int(from_row)
            )
            self._append(
                {
                    "op": "subscribe",
                    "sid": sid,
                    "counter": self._counter,
                    "from_row": int(from_row),
                    "query": query.to_payload(),
                }
            )
            obs.gauge_set("continuous.subscriptions", len(self._subs))
            return sid

    def unsubscribe(self, sid: str) -> bool:
        """Drop one subscription; ``False`` when the id is unknown."""
        with self._lock:
            if sid not in self._subs:
                return False
            del self._subs[sid]
            self._append({"op": "unsubscribe", "sid": sid})
            obs.gauge_set("continuous.subscriptions", len(self._subs))
            return True

    def ack(self, sid: str, seq: int, generation: object, state: dict) -> None:
        """Persist one delivered notification's frontier (call *after* delivery)."""
        with self._lock:
            sub = self._subs.get(sid)
            if sub is None:
                return  # racing unsubscribe: nothing to record
            sub.seq = int(seq)
            sub.generation = generation
            sub.state = state
            record_generation = (
                list(generation) if isinstance(generation, tuple) else generation
            )
            self._append(
                {
                    "op": "ack",
                    "sid": sid,
                    "seq": int(seq),
                    "generation": record_generation,
                    "state": state,
                }
            )

    def get(self, sid: str) -> "Optional[SubscriptionState]":
        """One subscription's current state (``None`` when unknown)."""
        with self._lock:
            return self._subs.get(sid)

    def subscriptions(self) -> "Dict[str, SubscriptionState]":
        """A snapshot of every active subscription, keyed by id."""
        with self._lock:
            return dict(self._subs)

    def __len__(self) -> int:
        return len(self._subs)

    # -- lifecycle ---------------------------------------------------------
    @property
    def path(self) -> "Optional[pathlib.Path]":
        """The backing log path (``None`` for an in-memory registry)."""
        return self._path

    def sync(self) -> None:
        """Force-fsync the log (no-op in memory)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._unsynced = 0

    def close(self) -> None:
        """Flush and close the log (idempotent)."""
        with self._lock:
            if self._file is not None:
                self.sync()
                self._file.close()
                self._file = None
