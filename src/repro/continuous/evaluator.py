"""The incremental evaluator: mutations in, notification deltas out.

:class:`ContinuousEvaluator` wraps any mutable engine target — a
:class:`repro.index.SeriesDatabase`, a
:class:`repro.storage.DiskBackedDatabase` or a
:class:`repro.serving.ShardedEngine` — and routes ``insert``/``delete``
through it.  After each mutation lands (WAL first, as always), every
standing subscription re-evaluates *incrementally*:

* **k-NN watch** — the inserted row's distance to the watch query is one
  call of the engine's own verification primitive
  (``np.linalg.norm(row - query)`` row-wise), merged into the kept top-k
  frontier under the stable ``(distance, id)`` tie-break.  Deletes only
  invalidate the frontier when the victim is *in* it; then the watch falls
  back to a full re-run through the target's ``knn_batch`` — the bound
  cascade, early-abandoning verification and (for a sharded target) the
  scatter-gather merge are exactly the one-shot machinery.  The
  ``continuous.delta_evals`` / ``continuous.full_reruns`` counters expose
  the delta-vs-full ratio.
* **range watch** — membership is a single distance comparison per insert;
  a delete just drops the id from the result set (no re-run can change the
  other members).
* **subsequence watch** — each inserted series is scanned for pattern
  occurrences (windows within the radius, de-duplicated to the locally
  best offset); deletes drop that series' matches.
* **anomaly watch** — the inserted values feed the subscription's
  :class:`~repro.continuous.OnlineDiscordScorer` (bulk ``extend``); each
  raised alert becomes its own notification.

Because every incremental step uses the same distance primitive and the
same tie-break as the batch engine, the maintained frontier is
**bit-identical** to re-running the query from scratch on the final
snapshot — the equivalence property ``tests/continuous`` checks across
reducer × index × shard layouts (adaptive reducers need
:attr:`repro.DistanceMode.LB`, the same exactness caveat as sharding).

Durability: subscriptions live in a :class:`SubscriptionRegistry` whose
log replays beside the data WAL.  Delivery acks are written *after* the
sink callback returns, so after a SIGKILL :meth:`resync` re-runs each
query on the recovered target and re-emits the delta against the last
acked frontier — at-least-once delivery, de-duplicated by ``seq``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..apps.windows import sliding_windows, windows_overlap
from ..distance.euclidean import euclidean
from ..engine.options import QueryOptions
from .anomaly import OnlineDiscordScorer
from .queries import (
    AnomalyWatch,
    KnnWatch,
    Notification,
    RangeWatch,
    StandingQuery,
    SubsequenceWatch,
)
from .registry import SubscriptionRegistry

__all__ = ["ContinuousEvaluator"]

Sink = Callable[[Notification], None]

Pair = Tuple[float, int]  # (distance, global id) — the stable sort key


def _inner_db(target):
    return getattr(target, "_inner", target)


def _is_sharded(target) -> bool:
    return hasattr(target, "shards")


def _total_rows(target) -> int:
    """Rows ever inserted (tombstones included) — the next global id."""
    if _is_sharded(target):
        return int(target.count)
    inner = _inner_db(target)
    return 0 if inner.data is None else int(inner._count)


def _live_gids(target) -> "List[int]":
    """Every live global id, ascending."""
    if _is_sharded(target):
        n = target.n_shards
        gids: "List[int]" = []
        for s, shard in enumerate(target.shards):
            gids.extend(local * n + s for local in _inner_db(shard)._live_ids)
        return sorted(gids)
    return sorted(_inner_db(target)._live_ids)


def _row(target, gid: int) -> np.ndarray:
    """One raw row by global id (tombstoned rows are still addressable)."""
    if _is_sharded(target):
        n = target.n_shards
        inner = _inner_db(target.shards[gid % n])
        local = gid // n
    else:
        inner = _inner_db(target)
        local = gid
    data = inner.data
    gather = getattr(data, "gather", None)
    if gather is not None and not isinstance(data, np.ndarray):
        return np.asarray(gather([local]), dtype=float)[0]
    return np.asarray(data[local], dtype=float)


def _distance(row: np.ndarray, query: np.ndarray) -> float:
    """The engine's verification primitive, applied to one row.

    Must stay the row-wise ``np.linalg.norm(..., axis=1)`` form —
    :func:`repro.index.linear_scan` and the engine's verification rounds
    compute distances that way, and bit-identical frontiers require the
    identical floating-point reduction.
    """
    return float(np.linalg.norm(row[None, :] - query[None, :], axis=1)[0])


class _Runtime:
    """One subscription's in-memory evaluation state."""

    __slots__ = ("pairs", "matches", "scorer")

    def __init__(self):
        self.pairs: "List[Pair]" = []  # knn / range frontier
        self.matches: "Dict[int, Tuple[Tuple[int, float], ...]]" = {}  # subsequence
        self.scorer: "Optional[OnlineDiscordScorer]" = None  # anomaly


class ContinuousEvaluator:
    """Standing-query evaluation over one mutable engine target.

    All mutation entry points (``insert``/``delete``) are serialised by an
    internal lock, so notification seqs and frontiers advance atomically
    per mutation.  Reads (``knn_batch``/``range_query``) pass straight
    through to the target.
    """

    def __init__(self, target, registry: "Optional[SubscriptionRegistry]" = None):
        self._target = target
        self.registry = registry if registry is not None else SubscriptionRegistry()
        self._lock = threading.RLock()
        self._sinks: "Dict[str, Sink]" = {}
        self._runtime: "Dict[str, _Runtime]" = {}
        self._seq: "Dict[str, int]" = {}
        self._restore()

    # -- delegation ------------------------------------------------------
    @property
    def target(self):
        """The wrapped engine target."""
        return self._target

    @property
    def generation(self):
        """The target's current generation (tuple when sharded)."""
        return getattr(self._target, "generation", None)

    def knn_batch(self, queries, options=None):
        """One-shot batch k-NN, straight through the target."""
        return self._target.knn_batch(queries, options)

    def range_query(self, query, radius):
        """One-shot radius query, straight through the target."""
        return self._target.range_query(query, radius)

    # -- subscription lifecycle -----------------------------------------
    def subscribe(self, query: StandingQuery, sink: "Optional[Sink]" = None) -> str:
        """Register a standing query; emits the initial ``full`` snapshot.

        k-NN and range watches open with their current result over the
        live collection; subsequence and anomaly watches are stream-shaped
        and open empty, seeing only rows inserted from now on.
        """
        with self._lock:
            from_row = _total_rows(self._target)
            sid = self.registry.subscribe(query, from_row=from_row)
            if sink is not None:
                self._sinks[sid] = sink
            runtime = _Runtime()
            if isinstance(query, (KnnWatch, RangeWatch)):
                runtime.pairs = self._scratch_pairs(query)
            elif isinstance(query, AnomalyWatch):
                runtime.scorer = self._make_scorer(query)
            self._runtime[sid] = runtime
            self._seq[sid] = 0
            note = self._snapshot_notification(sid, query, runtime, full=True)
            self._deliver(sid, note, time.perf_counter())
            return sid

    def unsubscribe(self, sid: str) -> bool:
        """Drop a subscription and its runtime state."""
        with self._lock:
            self._sinks.pop(sid, None)
            self._runtime.pop(sid, None)
            self._seq.pop(sid, None)
            return self.registry.unsubscribe(sid)

    def attach_sink(self, sid: str, sink: Sink) -> None:
        """Route a subscription's notifications to ``sink`` (one per sub)."""
        with self._lock:
            if self.registry.get(sid) is None:
                raise KeyError(f"unknown subscription {sid!r}")
            self._sinks[sid] = sink

    def detach_sink(self, sid: str) -> None:
        """Stop delivering (the subscription itself stays registered)."""
        with self._lock:
            self._sinks.pop(sid, None)

    def subscriptions(self) -> "Dict[str, StandingQuery]":
        """Active subscription ids and their standing queries."""
        with self._lock:
            return {sid: s.query for sid, s in self.registry.subscriptions().items()}

    # -- mutations -------------------------------------------------------
    def insert(self, series) -> int:
        """Insert one series, then re-evaluate every affected subscription."""
        started = time.perf_counter()
        series = np.asarray(series, dtype=float)
        with self._lock:
            gid = self._target.insert(series)
            with obs.span("continuous.evaluate"):
                for sid, sub in self.registry.subscriptions().items():
                    runtime = self._runtime.get(sid)
                    if runtime is None:
                        continue
                    for note in self._on_insert(sid, sub.query, runtime, gid, series):
                        self._deliver(sid, note, started)
            return gid

    def insert_batch(self, data) -> "List[int]":
        """Insert many series, re-evaluating subscriptions per row in order.

        The target's batched insert runs one reduction pass over the whole
        matrix; subscription evaluation stays per-row (each watch folds in
        one ``(gid, series)`` at a time, independent of the other rows), so
        notifications match a loop of :meth:`insert` exactly.
        """
        started = time.perf_counter()
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("insert_batch expects a (count, n) array of series")
        with self._lock:
            batch = getattr(self._target, "insert_batch", None)
            if batch is not None and matrix.shape[0] > 1:
                gids = list(batch(matrix))
            else:
                gids = [self._target.insert(row) for row in matrix]
            with obs.span("continuous.evaluate"):
                for gid, row in zip(gids, matrix):
                    for sid, sub in self.registry.subscriptions().items():
                        runtime = self._runtime.get(sid)
                        if runtime is None:
                            continue
                        for note in self._on_insert(sid, sub.query, runtime, gid, row):
                            self._deliver(sid, note, started)
            return gids

    def delete(self, gid: int) -> bool:
        """Delete one series, then re-evaluate every affected subscription."""
        started = time.perf_counter()
        with self._lock:
            if not self._target.delete(gid):
                return False
            with obs.span("continuous.evaluate"):
                for sid, sub in self.registry.subscriptions().items():
                    runtime = self._runtime.get(sid)
                    if runtime is None:
                        continue
                    note = self._on_delete(sid, sub.query, runtime, int(gid))
                    if note is not None:
                        self._deliver(sid, note, started)
            return True

    # -- recovery --------------------------------------------------------
    def resync(self, sid: "Optional[str]" = None) -> "List[Notification]":
        """Re-run subscriptions from scratch and re-emit unacked deltas.

        Call after reopening a crashed target: every subscription's query
        re-runs on the recovered snapshot and, where the result differs
        from the last *acked* frontier, a ``full`` notification (or the
        missing alerts, for anomaly watches) is re-emitted with the seq it
        would have carried — identical content and seq as the possibly-
        lost original, so consumers de-duplicate by seq.  Also the
        catch-up path after server-side backpressure drops.
        """
        with self._lock:
            targets = [sid] if sid is not None else list(self.registry.subscriptions())
            emitted: "List[Notification]" = []
            for one in targets:
                emitted.extend(self._resync_one(one))
            return emitted

    def refresh(self, sid: str) -> "Optional[Notification]":
        """Unconditionally re-emit one subscription's full current snapshot.

        The catch-up path after server-side backpressure drops: the acked
        frontier is already current there (acks witness the sink call, not
        the consumer), so :meth:`resync` would emit nothing — this instead
        always pushes a replacement ``full`` snapshot for the snapshot-
        shaped kinds.  Anomaly watches return ``None``: their alerts are
        point events with no snapshot to replace them with.
        """
        with self._lock:
            sub = self.registry.get(sid)
            if sub is None or isinstance(sub.query, AnomalyWatch):
                return None
            started = time.perf_counter()
            obs.count("continuous.full_reruns")
            runtime = self._runtime.get(sid)
            if runtime is None:
                runtime = _Runtime()
                self._runtime[sid] = runtime
            query = sub.query
            if isinstance(query, (KnnWatch, RangeWatch)):
                previous = [g for _, g in runtime.pairs]
                runtime.pairs = self._scratch_pairs(query)
            else:
                previous = sorted(runtime.matches)
                runtime.matches = {}
                for gid in _live_gids(self._target):
                    if gid < sub.from_row:
                        continue
                    found = self._scan_pattern(query, _row(self._target, gid))
                    if found:
                        runtime.matches[gid] = found
            note = self._snapshot_notification(
                sid, query, runtime, full=True, against=previous
            )
            self._deliver(sid, note, started)
            return note

    def _resync_one(self, sid: str) -> "List[Notification]":
        sub = self.registry.get(sid)
        if sub is None:
            return []
        started = time.perf_counter()
        runtime = self._runtime.get(sid)
        if runtime is None:
            runtime = _Runtime()
            self._runtime[sid] = runtime
        self._seq[sid] = int(sub.seq)
        query = sub.query
        out: "List[Notification]" = []
        if isinstance(query, (KnnWatch, RangeWatch)):
            runtime.pairs = self._scratch_pairs(query)
            acked = list(
                zip(sub.state.get("distances", ()), map(int, sub.state.get("ids", ())))
            )
            if [(float(d), int(g)) for d, g in acked] != runtime.pairs or sub.seq == 0:
                note = self._snapshot_notification(
                    sid, query, runtime, full=True, against=[g for _, g in acked]
                )
                self._deliver(sid, note, started)
                out.append(note)
        elif isinstance(query, SubsequenceWatch):
            obs.count("continuous.full_reruns")
            runtime.matches = {}
            for gid in _live_gids(self._target):
                if gid < sub.from_row:
                    continue
                found = self._scan_pattern(query, _row(self._target, gid))
                if found:
                    runtime.matches[gid] = found
            acked = {
                int(g): tuple((int(s), float(d)) for s, d in offsets)
                for g, offsets in (sub.state.get("matches") or {}).items()
            }
            if acked != runtime.matches or sub.seq == 0:
                note = self._snapshot_notification(
                    sid, query, runtime, full=True, against=sorted(acked)
                )
                self._deliver(sid, note, started)
                out.append(note)
        elif isinstance(query, AnomalyWatch):
            obs.count("continuous.full_reruns")
            runtime.scorer = self._make_scorer(query)
            alerts = []
            for gid in range(sub.from_row, _total_rows(self._target)):
                alerts.extend(runtime.scorer.extend(_row(self._target, gid)))
            # scoring is deterministic, so re-fed alerts reproduce the
            # originals; everything past the acked count was never confirmed
            for alert in alerts[int(sub.state.get("alerts", 0)) :]:
                note = self._alert_notification(sid, alert)
                self._deliver(sid, note, started)
                out.append(note)
        return out

    # -- per-kind incremental evaluation ---------------------------------
    def _on_insert(
        self, sid: str, query: StandingQuery, runtime: _Runtime, gid: int, series
    ) -> "List[Notification]":
        if isinstance(query, KnnWatch):
            obs.count("continuous.delta_evals")
            d = _distance(series, query.query)
            if len(runtime.pairs) >= query.k and (d, gid) >= runtime.pairs[-1]:
                return []  # the frontier is full and the new row is farther
            merged = sorted(runtime.pairs + [(d, gid)])[: query.k]
            removed = [g for _, g in runtime.pairs if (g not in {m for _, m in merged})]
            runtime.pairs = merged
            return [
                self._snapshot_notification(
                    sid, query, runtime, added=(gid,), removed=tuple(removed)
                )
            ]
        if isinstance(query, RangeWatch):
            obs.count("continuous.delta_evals")
            # range_query verifies with euclidean() (sqrt of a dot product),
            # a different float reduction than the knn batch primitive —
            # bit-identity to a scratch range run needs the same one
            d = euclidean(series, np.asarray(query.query, dtype=float))
            if d > query.radius:
                return []
            runtime.pairs = sorted(runtime.pairs + [(d, gid)])
            return [self._snapshot_notification(sid, query, runtime, added=(gid,))]
        if isinstance(query, SubsequenceWatch):
            obs.count("continuous.delta_evals")
            found = self._scan_pattern(query, series)
            if not found:
                return []
            runtime.matches[gid] = found
            return [self._snapshot_notification(sid, query, runtime, added=(gid,))]
        if isinstance(query, AnomalyWatch):
            obs.count("continuous.delta_evals")
            alerts = runtime.scorer.extend(series)
            return [self._alert_notification(sid, alert) for alert in alerts]
        return []

    def _on_delete(
        self, sid: str, query: StandingQuery, runtime: _Runtime, gid: int
    ) -> "Optional[Notification]":
        if isinstance(query, KnnWatch):
            if all(g != gid for _, g in runtime.pairs):
                obs.count("continuous.delta_evals")
                return None  # outside the frontier: the top-k cannot change
            # the frontier lost a member — only a full re-run can refill it
            obs.count("continuous.full_reruns")
            previous = [g for _, g in runtime.pairs]
            runtime.pairs = self._scratch_pairs(query)
            return self._snapshot_notification(
                sid, query, runtime, full=True, against=previous
            )
        if isinstance(query, RangeWatch):
            obs.count("continuous.delta_evals")
            kept = [(d, g) for d, g in runtime.pairs if g != gid]
            if len(kept) == len(runtime.pairs):
                return None
            runtime.pairs = kept
            return self._snapshot_notification(sid, query, runtime, removed=(gid,))
        if isinstance(query, SubsequenceWatch):
            obs.count("continuous.delta_evals")
            if gid not in runtime.matches:
                return None
            del runtime.matches[gid]
            return self._snapshot_notification(sid, query, runtime, removed=(gid,))
        return None  # anomaly watches consume the stream; deletes don't rewind it

    # -- scratch evaluation ----------------------------------------------
    def _scratch_pairs(self, query) -> "List[Pair]":
        """The watch's exact result via the one-shot engine machinery."""
        if _total_rows(self._target) == 0 or not _live_gids(self._target):
            return []
        if isinstance(query, KnnWatch):
            batch = self._target.knn_batch(
                np.asarray([query.query], dtype=float), QueryOptions(k=query.k)
            )
            result = batch.results[0]
        else:
            result = self._target.range_query(query.query, query.radius)
        return [(float(d), int(g)) for d, g in zip(result.distances, result.ids)]

    def _scan_pattern(
        self, query: SubsequenceWatch, series: np.ndarray
    ) -> "Tuple[Tuple[int, float], ...]":
        """Pattern occurrences in one series: in-radius, locally best."""
        series = np.asarray(series, dtype=float)
        length = query.pattern.shape[0]
        if series.shape[0] < length:
            return ()
        windows, starts = sliding_windows(series, length, query.stride)
        distances = np.linalg.norm(windows - query.pattern[None, :], axis=1)
        hits = [
            (int(starts[i]), float(d))
            for i, d in enumerate(distances)
            if d <= query.radius
        ]
        kept: "List[Tuple[int, float]]" = []
        for start, d in sorted(hits, key=lambda h: (h[1], h[0])):
            if not any(windows_overlap(start, seen, length) for seen, _ in kept):
                kept.append((start, d))
        return tuple(sorted(kept))

    def _make_scorer(self, query: AnomalyWatch) -> OnlineDiscordScorer:
        return OnlineDiscordScorer(
            window=query.window,
            threshold=query.threshold,
            stride=query.stride,
            max_segments=query.max_segments,
            history=query.history,
        )

    # -- notification assembly / delivery --------------------------------
    def _next_seq(self, sid: str) -> int:
        self._seq[sid] = self._seq.get(sid, 0) + 1
        return self._seq[sid]

    def _snapshot_notification(
        self,
        sid: str,
        query: StandingQuery,
        runtime: _Runtime,
        full: bool = False,
        added: "Tuple[int, ...]" = (),
        removed: "Tuple[int, ...]" = (),
        against: "Optional[List[int]]" = None,
    ) -> Notification:
        """A notification carrying the subscription's current frontier.

        ``against`` (previous member ids) turns a full snapshot into a
        delta too: added/removed are computed relative to it.
        """
        if isinstance(query, SubsequenceWatch):
            current = sorted(runtime.matches)
            matches = tuple(
                (gid, start, d)
                for gid in current
                for start, d in runtime.matches[gid]
            )
            ids: "Tuple[int, ...]" = ()
            distances: "Tuple[float, ...]" = ()
        else:
            current = [g for _, g in runtime.pairs]
            matches = ()
            ids = tuple(current)
            distances = tuple(d for d, _ in runtime.pairs)
        if against is not None:
            added = tuple(g for g in current if g not in set(against))
            removed = tuple(g for g in against if g not in set(current))
        return Notification(
            subscription_id=sid,
            seq=self._next_seq(sid),
            kind=query.kind,
            generation=self.generation,
            ids=ids,
            distances=distances,
            added=added,
            removed=removed,
            full=full,
            matches=matches,
        )

    def _alert_notification(self, sid: str, alert) -> Notification:
        obs.count("continuous.alerts")
        return Notification(
            subscription_id=sid,
            seq=self._next_seq(sid),
            kind="anomaly",
            generation=self.generation,
            alert=alert.to_payload(),
        )

    def _state_of(self, sid: str, seq: int) -> dict:
        """The ack-record state snapshot as of notification ``seq``."""
        runtime = self._runtime[sid]
        sub = self.registry.get(sid)
        if isinstance(sub.query, (KnnWatch, RangeWatch)):
            return {
                "ids": [g for _, g in runtime.pairs],
                "distances": [d for d, _ in runtime.pairs],
            }
        if isinstance(sub.query, SubsequenceWatch):
            return {
                "matches": {
                    str(gid): [[s, d] for s, d in offsets]
                    for gid, offsets in runtime.matches.items()
                }
            }
        # NOT scorer.n_alerts: extend() scores a whole row before its alert
        # burst delivers one by one, so the scorer's count runs ahead of the
        # acks mid-burst and a crash there would skip the undelivered tail
        # on resync.  Every anomaly notification past the initial snapshot
        # is one alert, so the delivered count as of ``seq`` is seq - 1.
        return {
            "points": runtime.scorer.n_points,
            "alerts": max(0, int(seq) - 1),
        }

    def _deliver(self, sid: str, note: Notification, started: float) -> None:
        """Sink first, then ack — the order the delivery guarantee needs."""
        sink = self._sinks.get(sid)
        if sink is not None:
            sink(note)
        obs.count("continuous.notifications")
        obs.observe("continuous.notify_ms", (time.perf_counter() - started) * 1000.0)
        self.registry.ack(sid, note.seq, note.generation, self._state_of(sid, note.seq))

    # -- restore ----------------------------------------------------------
    def _restore(self) -> None:
        """Seed runtime state from the registry's acked frontiers.

        Rebuilds what the log proves was delivered; :meth:`resync` then
        reconciles against the recovered target and re-emits anything the
        crash may have swallowed.
        """
        for sid, sub in self.registry.subscriptions().items():
            runtime = _Runtime()
            if isinstance(sub.query, (KnnWatch, RangeWatch)):
                runtime.pairs = [
                    (float(d), int(g))
                    for d, g in zip(
                        sub.state.get("distances", ()), sub.state.get("ids", ())
                    )
                ]
            elif isinstance(sub.query, SubsequenceWatch):
                runtime.matches = {
                    int(g): tuple((int(s), float(d)) for s, d in offsets)
                    for g, offsets in (sub.state.get("matches") or {}).items()
                }
            elif isinstance(sub.query, AnomalyWatch):
                runtime.scorer = self._make_scorer(sub.query)
            self._runtime[sid] = runtime
            self._seq[sid] = int(sub.seq)

    # -- lifecycle ---------------------------------------------------------
    def sync(self) -> None:
        """Fsync the registry log (the target's WAL has its own policy)."""
        self.registry.sync()

    def close(self) -> None:
        """Close the registry log; the target stays open (caller-owned)."""
        self.registry.close()
