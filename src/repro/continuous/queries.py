"""Standing-query vocabulary and the :class:`Notification` delta type.

A *standing query* is registered once and answered forever: the
:class:`~repro.continuous.ContinuousEvaluator` keeps its current result
frontier and emits a :class:`Notification` whenever a mutation changes it.
Four kinds exist:

* :class:`KnnWatch` — the query's top-k under the stable ``(distance, id)``
  tie-break, maintained incrementally;
* :class:`RangeWatch` — every live series within ``radius``;
* :class:`SubsequenceWatch` — occurrences of a short pattern inside each
  series inserted after the subscription (GEMINI's subsequence problem,
  evaluated on the stream);
* :class:`AnomalyWatch` — online discord alerts over the concatenated
  stream of inserted values, scored by
  :class:`repro.continuous.OnlineDiscordScorer`.

Every type round-trips through ``to_payload`` / ``from_payload`` — the same
dicts travel the TCP wire (push frames) and the durable subscription log,
so a replayed subscription is byte-for-byte the registered one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple, Union

import numpy as np

__all__ = [
    "AnomalyWatch",
    "KnnWatch",
    "Notification",
    "RangeWatch",
    "StandingQuery",
    "SubsequenceWatch",
    "query_from_payload",
]


@dataclass(frozen=True, eq=False)
class KnnWatch:
    """Standing top-``k``: the query's current nearest neighbours."""

    kind: ClassVar[str] = "knn"

    query: np.ndarray
    k: int = 1

    def __post_init__(self):
        series = np.asarray(self.query, dtype=float)
        if series.ndim != 1:
            raise ValueError("query must be a single 1-D series")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        object.__setattr__(self, "query", series)

    def to_payload(self) -> dict:
        """JSON-safe dict for the wire and the subscription log."""
        return {"kind": self.kind, "query": self.query.tolist(), "k": int(self.k)}

    @classmethod
    def from_payload(cls, payload: dict) -> "KnnWatch":
        return cls(
            query=np.asarray(payload["query"], dtype=float),
            k=int(payload.get("k", 1)),
        )


@dataclass(frozen=True, eq=False)
class RangeWatch:
    """Standing radius query: every live series within ``radius``."""

    kind: ClassVar[str] = "range"

    query: np.ndarray
    radius: float

    def __post_init__(self):
        series = np.asarray(self.query, dtype=float)
        if series.ndim != 1:
            raise ValueError("query must be a single 1-D series")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        object.__setattr__(self, "query", series)
        object.__setattr__(self, "radius", float(self.radius))

    def to_payload(self) -> dict:
        """JSON-safe dict for the wire and the subscription log."""
        return {"kind": self.kind, "query": self.query.tolist(), "radius": self.radius}

    @classmethod
    def from_payload(cls, payload: dict) -> "RangeWatch":
        return cls(
            query=np.asarray(payload["query"], dtype=float),
            radius=float(payload["radius"]),
        )


@dataclass(frozen=True, eq=False)
class SubsequenceWatch:
    """Occurrences of ``pattern`` inside series inserted after subscribing.

    Each inserted series is scanned at the given ``stride``; windows within
    Euclidean ``radius`` of the pattern are de-duplicated to the locally
    best offset (the same rule as
    :meth:`repro.apps.SubsequenceIndex.range_search`).
    """

    kind: ClassVar[str] = "subsequence"

    pattern: np.ndarray
    radius: float
    stride: int = 1

    def __post_init__(self):
        pattern = np.asarray(self.pattern, dtype=float)
        if pattern.ndim != 1 or pattern.shape[0] < 2:
            raise ValueError("pattern must be a 1-D series of length >= 2")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        if self.stride < 1:
            raise ValueError("stride must be positive")
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "radius", float(self.radius))
        object.__setattr__(self, "stride", int(self.stride))

    def to_payload(self) -> dict:
        """JSON-safe dict for the wire and the subscription log."""
        return {
            "kind": self.kind,
            "pattern": self.pattern.tolist(),
            "radius": self.radius,
            "stride": self.stride,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SubsequenceWatch":
        return cls(
            pattern=np.asarray(payload["pattern"], dtype=float),
            radius=float(payload["radius"]),
            stride=int(payload.get("stride", 1)),
        )


@dataclass(frozen=True)
class AnomalyWatch:
    """Online discord alerts over the stream of inserted values.

    Values of every series inserted after the subscription concatenate into
    one monitored stream; each completed window is scored by
    :class:`repro.continuous.OnlineDiscordScorer` and windows whose nearest
    non-overlapping predecessor is farther than ``threshold`` raise alerts.
    """

    kind: ClassVar[str] = "anomaly"

    window: int
    threshold: float
    stride: int = 1
    max_segments: int = 8
    history: int = 64

    def __post_init__(self):
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.stride < 1:
            raise ValueError("stride must be positive")
        if self.max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        if self.history < 1:
            raise ValueError("history must be >= 1")

    def to_payload(self) -> dict:
        """JSON-safe dict for the wire and the subscription log."""
        return {
            "kind": self.kind,
            "window": int(self.window),
            "threshold": float(self.threshold),
            "stride": int(self.stride),
            "max_segments": int(self.max_segments),
            "history": int(self.history),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AnomalyWatch":
        return cls(
            window=int(payload["window"]),
            threshold=float(payload["threshold"]),
            stride=int(payload.get("stride", 1)),
            max_segments=int(payload.get("max_segments", 8)),
            history=int(payload.get("history", 64)),
        )


StandingQuery = Union[KnnWatch, RangeWatch, SubsequenceWatch, AnomalyWatch]

_QUERY_KINDS = {
    cls.kind: cls for cls in (KnnWatch, RangeWatch, SubsequenceWatch, AnomalyWatch)
}


def query_from_payload(payload: dict) -> StandingQuery:
    """Rebuild a standing query from its ``to_payload`` dict."""
    kind = payload.get("kind")
    if kind not in _QUERY_KINDS:
        raise ValueError(f"unknown standing-query kind {kind!r}")
    return _QUERY_KINDS[kind].from_payload(payload)


@dataclass(frozen=True)
class Notification:
    """One incremental result delta for one subscription.

    ``seq`` increases by one per delivered notification of a subscription
    and is the client's idempotency key: re-deliveries after a crash carry
    the seq they were first assigned, so consumers drop any seq at or below
    the last one they processed.  ``full`` marks a complete-state resync
    (the initial snapshot, a post-recovery re-run, or a post-backpressure
    catch-up); applying it replaces the consumer's state rather than
    patching it.

    ``ids``/``distances`` are the subscription's *current* frontier in the
    stable ``(distance, id)`` order; ``added``/``removed`` are the global
    series ids that entered/left it relative to the previous notification.
    Subsequence watches report ``matches`` as ``(series_id, start,
    distance)`` triples; anomaly watches carry one ``alert`` payload per
    notification (see :class:`repro.continuous.AnomalyAlert`).
    """

    subscription_id: str
    seq: int
    kind: str
    generation: object = None
    ids: "Tuple[int, ...]" = ()
    distances: "Tuple[float, ...]" = ()
    added: "Tuple[int, ...]" = ()
    removed: "Tuple[int, ...]" = ()
    full: bool = False
    matches: "Tuple[Tuple[int, int, float], ...]" = ()
    alert: Optional[dict] = field(default=None)

    def to_payload(self) -> dict:
        """JSON-safe dict — the body of a wire push frame."""
        generation = self.generation
        if isinstance(generation, tuple):
            generation = list(generation)
        return {
            "subscription_id": self.subscription_id,
            "seq": int(self.seq),
            "kind": self.kind,
            "generation": generation,
            "ids": list(self.ids),
            "distances": list(self.distances),
            "added": list(self.added),
            "removed": list(self.removed),
            "full": bool(self.full),
            "matches": [list(m) for m in self.matches],
            "alert": self.alert,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Notification":
        """Rebuild a notification from its :meth:`to_payload` dict."""
        generation = payload.get("generation")
        if isinstance(generation, list):
            generation = tuple(generation)
        return cls(
            subscription_id=str(payload["subscription_id"]),
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            generation=generation,
            ids=tuple(int(i) for i in payload.get("ids", ())),
            distances=tuple(float(d) for d in payload.get("distances", ())),
            added=tuple(int(i) for i in payload.get("added", ())),
            removed=tuple(int(i) for i in payload.get("removed", ())),
            full=bool(payload.get("full", False)),
            matches=tuple(
                (int(g), int(s), float(d)) for g, s, d in payload.get("matches", ())
            ),
            alert=payload.get("alert"),
        )
