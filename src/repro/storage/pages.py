"""Paged on-disk storage for raw series, with I/O accounting.

The paper measures pruning power because every verification of a candidate
is a disk access in a disk-resident database.  This substrate makes that
literal: raw series live in fixed-size pages in a binary file; reads go
through an LRU page cache; and the store counts physical page reads so
experiments can report true I/O instead of the in-memory proxy.
"""

from __future__ import annotations

import os
import pathlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Union

import numpy as np

from .. import obs

__all__ = ["PageStats", "PagedSeriesStore"]

PathLike = Union[str, pathlib.Path]


@dataclass
class PageStats:
    """Physical-I/O counters."""

    page_reads: int = 0
    cache_hits: int = 0

    @property
    def total_accesses(self) -> int:
        return self.page_reads + self.cache_hits

    def reset(self) -> None:
        """Zero the counters."""
        self.page_reads = 0
        self.cache_hits = 0


class PagedSeriesStore:
    """Fixed-page binary storage of an equal-length series collection.

    Args:
        path: backing file (created by :meth:`write`).
        page_size: page capacity in bytes (default 4 KiB, a classic page).
        cache_pages: LRU cache capacity in pages.
    """

    def __init__(self, path: PathLike, page_size: int = 4096, cache_pages: int = 8):
        if page_size < 64:
            raise ValueError("page_size must be at least 64 bytes")
        if cache_pages < 1:
            raise ValueError("cache_pages must be >= 1")
        self.path = pathlib.Path(path)
        self.page_size = int(page_size)
        self.cache_pages = int(cache_pages)
        self.stats = PageStats()
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()
        self._count = 0
        self._length = 0
        self._row_bytes = 0
        #: ``(row_count, ColumnBlockStore)`` memmap cache; see mapped_columns
        self._mapped = None

    # ------------------------------------------------------------------
    @classmethod
    def write(
        cls, path: PathLike, data: np.ndarray, page_size: int = 4096, cache_pages: int = 8
    ) -> "PagedSeriesStore":
        """Materialise a collection to disk and return an opened store."""
        data = np.ascontiguousarray(np.asarray(data, dtype="<f8"))
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("write expects a non-empty (count, n) array")
        store = cls(path, page_size=page_size, cache_pages=cache_pages)
        store._count, store._length = data.shape
        store._row_bytes = store._length * 8
        header = np.array([store._count, store._length], dtype="<i8").tobytes()
        with open(store.path, "wb") as handle:
            handle.write(header.ljust(store.page_size, b"\0"))
            handle.write(data.tobytes())
        total_bytes = store.page_size + data.nbytes
        obs.count("storage.page_writes", -(-total_bytes // store.page_size))
        return store

    @classmethod
    def open(cls, path: PathLike, page_size: int = 4096, cache_pages: int = 8) -> "PagedSeriesStore":
        """Open an existing store, reading its header."""
        store = cls(path, page_size=page_size, cache_pages=cache_pages)
        with open(store.path, "rb") as handle:
            header = handle.read(16)
        if len(header) < 16:
            raise ValueError(f"{path} is not a paged series store")
        count, length = np.frombuffer(header, dtype="<i8")
        if count <= 0 or length <= 0:
            raise ValueError(f"{path} has a corrupt header")
        store._count, store._length = int(count), int(length)
        store._row_bytes = store._length * 8
        return store

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def length(self) -> int:
        """Length ``n`` of every stored series."""
        return self._length

    def pages_per_series(self) -> float:
        """How many pages one series read touches on average."""
        return max(self._row_bytes / self.page_size, 1e-12)

    # ------------------------------------------------------------------
    def _read_page(self, page_id: int, handle=None) -> bytes:
        if page_id in self._cache:
            self._cache.move_to_end(page_id)
            self.stats.cache_hits += 1
            obs.count("storage.cache_hits")
            return self._cache[page_id]
        if handle is None:
            with open(self.path, "rb") as handle:
                handle.seek(self.page_size * page_id)
                payload = handle.read(self.page_size)
        else:
            handle.seek(self.page_size * page_id)
            payload = handle.read(self.page_size)
        self.stats.page_reads += 1
        obs.count("storage.page_reads")
        self._cache[page_id] = payload
        if len(self._cache) > self.cache_pages:
            self._cache.popitem(last=False)
        return payload

    def _row_from_pages(self, series_id: int, handle=None) -> np.ndarray:
        start_byte = self.page_size + series_id * self._row_bytes  # page 0 is the header
        end_byte = start_byte + self._row_bytes
        first_page = start_byte // self.page_size
        last_page = (end_byte - 1) // self.page_size
        payload = b"".join(
            self._read_page(p, handle) for p in range(first_page, last_page + 1)
        )
        offset = start_byte - first_page * self.page_size
        return np.frombuffer(payload[offset : offset + self._row_bytes], dtype="<f8").copy()

    def read(self, series_id: int) -> np.ndarray:
        """Read one series through the page cache."""
        if not 0 <= series_id < self._count:
            raise IndexError(f"series {series_id} out of range ({self._count} stored)")
        return self._row_from_pages(series_id)

    def get_rows(self, series_ids) -> np.ndarray:
        """Read many series through the page cache in one batched pass.

        Rows are fetched in ascending id order — page-sequential, so a run
        of candidates sharing a page costs one physical read — over a
        single open file handle, then returned in the *requested* order.
        The cache and the :class:`PageStats` accounting behave exactly as
        the equivalent sequence of :meth:`read` calls would.
        """
        ids = [int(sid) for sid in series_ids]
        for sid in ids:
            if not 0 <= sid < self._count:
                raise IndexError(f"series {sid} out of range ({self._count} stored)")
        obs.count("pages.batch_reads")
        out = np.empty((len(ids), self._length), dtype=float)
        order = sorted(range(len(ids)), key=lambda i: ids[i])
        with open(self.path, "rb") as handle:
            for i in order:
                out[i] = self._row_from_pages(ids[i], handle)
        return out

    def read_all(self) -> np.ndarray:
        """Read the whole collection (sequential scan)."""
        return self.get_rows(range(self._count))

    # ------------------------------------------------------------------
    def mapped_columns(self):
        """A read-only column-block view of the row region, or ``None``.

        Built lazily and rebuilt whenever the row count changes (appends
        extend the file past the mapped shape).  Reads through the mapping
        bypass the page cache, so callers must route their accounting
        through :meth:`account_mapped_rows` — the returned block does this
        itself on every ``gather``.
        """
        if self._count == 0:
            return None
        cached = self._mapped
        if cached is not None and cached[0] == self._count:
            return cached[1]
        from .columns import ColumnBlockStore

        try:
            block = ColumnBlockStore.from_paged(self)
        except (OSError, ValueError):
            self._mapped = None
            return None
        self._mapped = (self._count, block)
        return block

    def account_mapped_rows(self, series_ids) -> None:
        """Fold memory-mapped row reads into the physical-I/O counters.

        Each row is charged the pages it spans, exactly as :meth:`read`
        would report for a cold cache; mapped access never consults the LRU
        so the charge goes entirely to ``page_reads``.
        """
        idx = np.asarray(series_ids, dtype=np.int64)
        if idx.size == 0:
            return
        start = self.page_size + idx * self._row_bytes
        end = start + self._row_bytes - 1
        pages = int(np.sum(end // self.page_size - start // self.page_size + 1))
        self.stats.page_reads += pages
        obs.count("storage.page_reads", pages)

    # ------------------------------------------------------------------
    def put_row(self, series_id: int, values: np.ndarray, sync: bool = False) -> None:
        """Write one series in place, or append it at ``series_id == count``.

        Appends grow the file and bump the header's row count; overwrites
        (used by crash recovery to heal torn page writes) leave the count
        alone.  Cached pages overlapping the row are invalidated so the
        next read sees the new bytes.
        """
        values = np.ascontiguousarray(np.asarray(values, dtype="<f8")).ravel()
        if not self._length:
            raise ValueError("store has no rows yet; materialise it with write() first")
        if len(values) != self._length:
            raise ValueError(
                f"row length {len(values)} does not match stored {self._length}"
            )
        if not 0 <= series_id <= self._count:
            raise IndexError(
                f"series {series_id} out of range for put_row ({self._count} stored)"
            )
        start_byte = self.page_size + series_id * self._row_bytes
        with open(self.path, "r+b") as handle:
            handle.seek(start_byte)
            handle.write(values.tobytes())
            if series_id == self._count:
                self._count += 1
                header = np.array([self._count, self._length], dtype="<i8").tobytes()
                handle.seek(0)
                handle.write(header)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
        first_page = start_byte // self.page_size
        last_page = (start_byte + self._row_bytes - 1) // self.page_size
        for page_id in range(first_page, last_page + 1):
            self._cache.pop(page_id, None)
        self._cache.pop(0, None)  # header page
        obs.count("storage.page_writes", last_page - first_page + 1)
