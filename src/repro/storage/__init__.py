"""Disk-backed storage substrate: paged raw series with I/O accounting."""

from .database import DiskBackedDatabase
from .pages import PagedSeriesStore, PageStats

__all__ = ["PagedSeriesStore", "PageStats", "DiskBackedDatabase"]
