"""Disk-backed storage substrate: paged raw series with I/O accounting,
plus packed column blocks for bulk verification."""

from .columns import ColumnBlockStore
from .database import DiskBackedDatabase
from .pages import PagedSeriesStore, PageStats

__all__ = ["PagedSeriesStore", "PageStats", "DiskBackedDatabase", "ColumnBlockStore"]
