"""A disk-backed similarity database: index in memory, raw series on pages.

The configuration the paper's GEMINI framing assumes: representations and
the index structure fit in memory; raw series live on disk and each
verification pays physical I/O.  Pruning power then *is* the fraction of
the collection's pages read per query.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Union

import numpy as np

from ..index.entries import Entry
from ..index.knn import KNNResult, SeriesDatabase
from ..index.mbr import feature_vector
from ..kinds import DistanceMode, IndexKind
from ..reduction.base import Reducer
from .pages import PagedSeriesStore

__all__ = ["DiskBackedDatabase"]

PathLike = Union[str, pathlib.Path]


class DiskBackedDatabase:
    """GEMINI search with raw data behind a :class:`PagedSeriesStore`.

    Args:
        reducer: dimensionality reduction method.
        store_path: backing file for the raw pages.
        index: an :class:`repro.IndexKind` (or legacy string / ``None``; see
            :class:`repro.index.SeriesDatabase`).
        distance_mode: a :class:`repro.DistanceMode` (or legacy string).
        page_size / cache_pages: storage knobs.
    """

    def __init__(
        self,
        reducer: Reducer,
        store_path: PathLike,
        index: "Union[IndexKind, str, None]" = IndexKind.DBCH,
        distance_mode: "Union[DistanceMode, str]" = DistanceMode.PAR,
        page_size: int = 4096,
        cache_pages: int = 8,
    ):
        self._inner = SeriesDatabase(reducer, index=index, distance_mode=distance_mode)
        self._store_path = pathlib.Path(store_path)
        self._page_size = page_size
        self._cache_pages = cache_pages
        self.store: Optional[PagedSeriesStore] = None
        self._wal = None
        self._home = None

    # ------------------------------------------------------------------
    def ingest(self, data: np.ndarray) -> None:
        """Write raw series to pages and build the in-memory index."""
        data = np.asarray(data, dtype=float)
        self.store = PagedSeriesStore.write(
            self._store_path, data, page_size=self._page_size, cache_pages=self._cache_pages
        )
        self._inner.ingest(data)
        # raw data now lives on disk; reads go through the store
        self._inner.data = _StoreView(self.store)

    def _reindex(self, rows: np.ndarray, representations: list) -> None:
        """Rebuild the inner index over ``rows`` already written to pages.

        Compaction helper: the rows were just rewritten to the store, so
        the index is rebuilt from the surviving representations and raw
        reads are routed back through the (fresh) page file.
        """
        self._inner.ingest(rows, representations=representations)
        self._inner.data = _StoreView(self.store)
        self._inner._buf = None

    def reopen(
        self,
        representations: list,
        live_ids: "Optional[list]" = None,
        row_count: "Optional[int]" = None,
    ) -> None:
        """Attach an existing store file using persisted representations.

        Used by :func:`repro.io.open_database`: the index rebuilds purely
        from the stored representations — no page is read and nothing is
        re-reduced — and subsequent verifications read pages as usual.
        ``live_ids`` restricts the index to the series that survived
        deletion; ``row_count`` is accepted for interface symmetry with the
        saved config (the store header is authoritative for the row total,
        which may exceed it when a WAL tail is about to be replayed).
        """
        self.store = PagedSeriesStore.open(
            self._store_path, page_size=self._page_size, cache_pages=self._cache_pages
        )
        ids = list(range(len(representations))) if live_ids is None else [int(i) for i in live_ids]
        if len(ids) != len(representations):
            raise ValueError("one representation per live series is required")
        budget = getattr(self._inner.reducer, "n_segments", None)
        entries = [
            Entry(
                series_id=sid,
                representation=rep,
                feature=feature_vector(rep, budget),
            )
            for sid, rep in zip(ids, representations)
        ]
        self._inner._install(_StoreView(self.store), entries)

    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        """k-NN where every candidate verification reads pages from disk."""
        if self.store is None:
            raise RuntimeError("ingest data before searching")
        return self._inner.knn(query, k)

    def knn_batch(self, queries: np.ndarray, options=None):
        """Batched k-NN over the paged store — see
        :meth:`repro.engine.QueryEngine.knn_batch`.

        Verification rows are gathered through the page cache, so batching
        changes CPU cost, not the I/O accounting; worker-pool fan-out is
        unavailable for paged data and degrades to in-process execution.
        """
        if self.store is None:
            raise RuntimeError("ingest data before searching")
        return self._inner.knn_batch(queries, options)

    def ground_truth(self, query: np.ndarray, k: int) -> KNNResult:
        """Exact answer via a full sequential scan (reads every page).

        The scan streams through the store view in blocks — the whole
        collection is charged as physical I/O but never materialised as one
        matrix.  Tombstoned rows are still read (they share pages with live
        ones) but never returned; the over-fetch is capped at the tombstone
        count, with a no-deletes fast path.
        """
        if self.store is None:
            raise RuntimeError("ingest data before searching")
        return self._inner._ground_truth_from(self._inner.data, query, k)

    # ------------------------------------------------------------------
    def insert(self, series: np.ndarray) -> int:
        """Append one series: WAL first, then its page, then the index."""
        if self.store is None:
            raise RuntimeError("ingest data before inserting")
        series = np.asarray(series, dtype=float)
        if series.ndim != 1 or series.shape[0] != self.store.length:
            raise ValueError(
                f"series length {series.shape} does not match stored {self.store.length}"
            )
        series_id = self._inner._count
        if self._wal is not None:
            self._wal.append_insert(series_id, series)
        self.store.put_row(series_id, series)
        self._inner._register(series_id, series)
        return series_id

    def insert_batch(self, data: np.ndarray) -> "list[int]":
        """Append many series with one batched reduction (see
        :meth:`repro.index.SeriesDatabase.insert_batch`): WAL records first,
        then the pages, then one ``transform_batch`` pass over the run."""
        if self.store is None:
            raise RuntimeError("ingest data before inserting")
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("insert_batch expects a (count, n) array of series")
        if matrix.shape[0] == 0:
            return []
        if matrix.shape[1] != self.store.length:
            raise ValueError(
                f"series length {matrix.shape[1]} does not match stored {self.store.length}"
            )
        ids = list(range(self._inner._count, self._inner._count + matrix.shape[0]))
        if self._wal is not None:
            for series_id, row in zip(ids, matrix):
                self._wal.append_insert(series_id, row)
        for series_id, row in zip(ids, matrix):
            self.store.put_row(series_id, row)
        self._inner._register_batch(ids, matrix)
        return ids

    def delete(self, series_id: int) -> bool:
        """Tombstone one series; its page bytes are reclaimed by compaction."""
        series_id = int(series_id)
        if series_id not in self._inner._live_ids:
            return False
        if self._wal is not None:
            self._wal.append_delete(series_id)
        return self._inner._delete_unlogged(series_id)

    # -- lifecycle ------------------------------------------------------
    @property
    def entries(self):
        """Live index entries (delegates to the in-memory index)."""
        return self._inner.entries

    @property
    def generation(self) -> int:
        """Monotonic version counter — see :class:`repro.lifecycle.MutableDatabase`."""
        return self._inner.generation

    @property
    def wal(self):
        """The attached :class:`repro.lifecycle.WriteAheadLog`, or ``None``."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Route subsequent mutations through ``wal`` (durability on)."""
        self._wal = wal

    def snapshot(self):
        """Pin the current index state — see :meth:`repro.index.SeriesDatabase.snapshot`."""
        return self._inner.snapshot()

    def freeze(self):
        """Alias for :meth:`snapshot`."""
        return self._inner.snapshot()

    def _replay_insert(self, series_id: int, series: np.ndarray) -> None:
        """Recovery hook: rewrite the row's page bytes (healing torn writes)
        and re-register the series, without re-logging."""
        from ..lifecycle.recovery import RecoveryError

        if self.store is None:
            raise RecoveryError("cannot replay inserts into an unopened store")
        if series_id > len(self.store):
            raise RecoveryError(
                f"WAL insert for id {series_id} but the store holds {len(self.store)} rows"
            )
        self.store.put_row(series_id, np.asarray(series, dtype=float))
        self._inner._register(series_id, series)

    def _replay_insert_batch(self, records: "list[tuple]") -> None:
        """Recovery hook: rewrite each row's page, then batch-register the run."""
        from ..lifecycle.recovery import RecoveryError

        if not records:
            return
        if self.store is None:
            raise RecoveryError("cannot replay inserts into an unopened store")
        pending = [(int(sid), np.asarray(series, dtype=float)) for sid, series in records]
        length = len(self.store)  # simulate per-record growth for validation
        for series_id, _ in pending:
            if series_id > length:
                raise RecoveryError(
                    f"WAL insert for id {series_id} but the store holds {length} rows"
                )
            length = max(length, series_id + 1)
        for series_id, series in pending:
            self.store.put_row(series_id, series)
        self._inner._register_batch(
            [sid for sid, _ in pending], np.vstack([s for _, s in pending])
        )

    def _replay_delete(self, series_id: int) -> bool:
        """Recovery hook: re-apply one WAL delete (idempotent)."""
        return self._inner._delete_unlogged(series_id)

    def _flush_pending(self) -> None:
        self._inner._flush_pending()

    def save(self, directory: PathLike) -> None:
        """Persist this database as a directory (see :mod:`repro.io`)."""
        from ..io.database import save_disk_database

        save_disk_database(self, directory)

    # ------------------------------------------------------------------
    @property
    def io_stats(self):
        """Physical-I/O counters of the underlying store."""
        return self.store.stats if self.store is not None else None

    def reset_io(self) -> None:
        """Zero the I/O counters (call between queries to measure one)."""
        if self.store is not None:
            self.store.stats.reset()


class _StoreView:
    """Array-like adapter: ``view[i]`` reads series ``i`` through the store.

    Batched access goes through :meth:`gather`, which prefers the store's
    memory-mapped column block (one contiguous slice, physical I/O charged
    per spanned page) and falls back to the page-cache batch read.
    """

    def __init__(self, store: PagedSeriesStore):
        self._store = store

    def __getitem__(self, series_id: int) -> np.ndarray:
        return self._store.read(int(series_id))

    def __len__(self) -> int:
        return len(self._store)

    @property
    def shape(self) -> "tuple[int, int]":
        return (len(self._store), self._store.length)

    def gather(self, series_ids) -> np.ndarray:
        """Rows for ``series_ids`` as one ``(len, n)`` float64 matrix."""
        block = self._store.mapped_columns()
        if block is not None:
            return np.asarray(block.gather(series_ids), dtype=float)
        return self._store.get_rows(series_ids)

    def columns(self):
        """The store's mapped :class:`~repro.storage.columns.ColumnBlockStore`."""
        return self._store.mapped_columns()
