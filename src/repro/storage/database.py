"""A disk-backed similarity database: index in memory, raw series on pages.

The configuration the paper's GEMINI framing assumes: representations and
the index structure fit in memory; raw series live on disk and each
verification pays physical I/O.  Pruning power then *is* the fraction of
the collection's pages read per query.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Union

import numpy as np

from ..index.knn import KNNResult, SeriesDatabase
from ..kinds import DistanceMode, IndexKind
from ..reduction.base import Reducer
from .pages import PagedSeriesStore

__all__ = ["DiskBackedDatabase"]

PathLike = Union[str, pathlib.Path]


class DiskBackedDatabase:
    """GEMINI search with raw data behind a :class:`PagedSeriesStore`.

    Args:
        reducer: dimensionality reduction method.
        store_path: backing file for the raw pages.
        index: an :class:`repro.IndexKind` (or legacy string / ``None``; see
            :class:`repro.index.SeriesDatabase`).
        distance_mode: a :class:`repro.DistanceMode` (or legacy string).
        page_size / cache_pages: storage knobs.
    """

    def __init__(
        self,
        reducer: Reducer,
        store_path: PathLike,
        index: "Union[IndexKind, str, None]" = IndexKind.DBCH,
        distance_mode: "Union[DistanceMode, str]" = DistanceMode.PAR,
        page_size: int = 4096,
        cache_pages: int = 8,
    ):
        self._inner = SeriesDatabase(reducer, index=index, distance_mode=distance_mode)
        self._store_path = pathlib.Path(store_path)
        self._page_size = page_size
        self._cache_pages = cache_pages
        self.store: Optional[PagedSeriesStore] = None

    # ------------------------------------------------------------------
    def ingest(self, data: np.ndarray) -> None:
        """Write raw series to pages and build the in-memory index."""
        data = np.asarray(data, dtype=float)
        self.store = PagedSeriesStore.write(
            self._store_path, data, page_size=self._page_size, cache_pages=self._cache_pages
        )
        self._inner.ingest(data)
        # raw data now lives on disk; reads go through the store
        self._inner.data = _StoreView(self.store)

    def reopen(self, representations: list) -> None:
        """Attach an existing store file using persisted representations.

        Used by :func:`repro.io.open_database`: the index rebuilds from the
        stored representations (one sequential read of the pages, no
        re-reduction) and subsequent verifications read pages as usual.
        """
        self.store = PagedSeriesStore.open(
            self._store_path, page_size=self._page_size, cache_pages=self._cache_pages
        )
        self._inner.ingest(self.store.read_all(), representations=representations)
        self._inner.data = _StoreView(self.store)

    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        """k-NN where every candidate verification reads pages from disk."""
        if self.store is None:
            raise RuntimeError("ingest data before searching")
        return self._inner.knn(query, k)

    def knn_batch(self, queries: np.ndarray, options=None):
        """Batched k-NN over the paged store — see
        :meth:`repro.engine.QueryEngine.knn_batch`.

        Verification rows are gathered through the page cache, so batching
        changes CPU cost, not the I/O accounting; worker-pool fan-out is
        unavailable for paged data and degrades to in-process execution.
        """
        if self.store is None:
            raise RuntimeError("ingest data before searching")
        return self._inner.knn_batch(queries, options)

    def ground_truth(self, query: np.ndarray, k: int) -> KNNResult:
        """Exact answer via a full sequential scan (reads every page)."""
        if self.store is None:
            raise RuntimeError("ingest data before searching")
        from ..index.knn import linear_scan

        return linear_scan(self.store.read_all(), query, k)

    def save(self, directory: PathLike) -> None:
        """Persist this database as a directory (see :mod:`repro.io`)."""
        from ..io.database import save_disk_database

        save_disk_database(self, directory)

    # ------------------------------------------------------------------
    @property
    def io_stats(self):
        """Physical-I/O counters of the underlying store."""
        return self.store.stats if self.store is not None else None

    def reset_io(self) -> None:
        """Zero the I/O counters (call between queries to measure one)."""
        if self.store is not None:
            self.store.stats.reset()


class _StoreView:
    """Array-like adapter: ``view[i]`` reads series ``i`` through the store."""

    def __init__(self, store: PagedSeriesStore):
        self._store = store

    def __getitem__(self, series_id: int) -> np.ndarray:
        return self._store.read(int(series_id))

    def __len__(self) -> int:
        return len(self._store)

    @property
    def shape(self) -> "tuple[int, int]":
        return (len(self._store), self._store.length)
