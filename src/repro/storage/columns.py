"""Packed column blocks — contiguous row storage for bulk verification.

The engine's per-round verification wants candidate rows as one contiguous
matrix.  A :class:`ColumnBlockStore` provides exactly that in two flavours:

* **in-memory** (:meth:`ColumnBlockStore.from_array`): a contiguous
  ``float32`` copy of the collection plus per-row ``float64`` norms.  This
  is the early-abandon *filter* cache — half the memory traffic of the
  float64 matrix — and is never the source of reported distances: survivors
  of the filter are always re-measured on the original ``float64`` rows
  (the row norms feed the filter's rounding margin, keeping it exact).
* **memory-mapped** (:meth:`ColumnBlockStore.from_paged`): a read-only
  ``float64`` :class:`numpy.memmap` over a :class:`~repro.storage.pages.PagedSeriesStore`'s
  row region.  The page file's layout (one header page, then ``count``
  contiguous little-endian rows) *is* already a column block, so gathering
  many rows becomes one fancy-index slice instead of ``count`` per-row page
  reads.  These bytes are the store of record, so distances computed from
  them are bit-identical to per-row reads; the ``on_gather`` hook lets the
  owning store keep its physical-I/O accounting truthful.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from .. import obs

__all__ = ["ColumnBlockStore"]


class ColumnBlockStore:
    """A ``(count, n)`` contiguous block of rows, gatherable by row id.

    Attributes:
        block: the backing 2-D array (``float32`` cache or ``float64`` memmap).
        row_norms: per-row L2 norms in ``float64`` (``None`` for mapped
            blocks, where the rows are already exact).
        dtype: the block's dtype — callers branch on it to pick the
            matching early-abandon margin rule.
    """

    __slots__ = ("block", "row_norms", "dtype", "count", "length", "_on_gather")

    def __init__(
        self,
        block: np.ndarray,
        row_norms: "Optional[np.ndarray]" = None,
        on_gather: "Optional[Callable[[np.ndarray], None]]" = None,
    ):
        if block.ndim != 2:
            raise ValueError("a column block must be a (count, n) array")
        self.block = block
        self.row_norms = row_norms
        self.dtype = block.dtype
        self.count = int(block.shape[0])
        self.length = int(block.shape[1])
        self._on_gather = on_gather

    # ------------------------------------------------------------------
    @classmethod
    def from_array(cls, data: np.ndarray, dtype=np.float32) -> "ColumnBlockStore":
        """A packed cache of an in-memory collection (default ``float32``).

        Row norms are computed from the *original* ``float64`` rows so the
        early-abandon margin can bound the cast's rounding error exactly.
        """
        rows = np.asarray(data, dtype=float)
        block = np.ascontiguousarray(rows, dtype=dtype)
        row_norms = np.linalg.norm(rows, axis=1)
        obs.count("columns.builds")
        return cls(block, row_norms=row_norms)

    @classmethod
    def from_paged(cls, store) -> "ColumnBlockStore":
        """A read-only ``float64`` memmap over a paged store's row region.

        The mapping shares bytes with the page file, so rows appended via
        ``put_row`` after construction are outside its shape — the caller
        (``PagedSeriesStore.mapped_columns``) rebuilds on count changes.
        """
        count = len(store)
        if count == 0:
            raise ValueError("cannot map an empty store")
        block = np.memmap(
            store.path,
            mode="r",
            dtype="<f8",
            offset=store.page_size,
            shape=(count, store.length),
        )
        obs.count("columns.builds")
        return cls(block, on_gather=getattr(store, "account_mapped_rows", None))

    # ------------------------------------------------------------------
    def gather(self, series_ids: "Iterable[int]") -> np.ndarray:
        """The rows for ``series_ids`` as one new ``(len, n)`` array."""
        idx = np.asarray(
            series_ids if isinstance(series_ids, np.ndarray) else list(series_ids),
            dtype=np.intp,
        )
        obs.count("columns.gathers")
        if self._on_gather is not None:
            self._on_gather(idx)
        return self.block[idx]

    def __len__(self) -> int:
        return self.count
