"""Trend reporting over the results store (``repro experiment report``).

Renders the store's per-cell derived metrics across experiments as plain
table rows — newest experiment last, so a regression reads left-to-right —
plus a per-experiment overview (trial counts, wall time, environment drift).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from .store import ResultsStore

__all__ = ["experiment_rows", "trend_rows"]


def experiment_rows(store: ResultsStore, name: "Optional[str]" = None) -> "List[Dict]":
    """One overview row per stored experiment (oldest first)."""
    rows: "List[Dict]" = []
    for experiment in store.experiments(name):
        trials = store.trials(experiment["id"])
        ok = [t for t in trials if t["status"] == "ok"]
        rows.append(
            {
                "id": experiment["id"],
                "name": experiment["name"],
                "seed": experiment["seed"],
                "trials_ok": len(ok),
                "trials_failed": len(trials) - len(ok),
                "wall_s": round(sum(t["elapsed_s"] for t in ok), 3),
                "python": store.environment(experiment["id"]).get("python", "?"),
            }
        )
    return rows


def trend_rows(
    store: ResultsStore,
    name: "Optional[str]" = None,
    metric: "Optional[str]" = None,
    workload: "Optional[str]" = None,
) -> "List[Dict]":
    """Per-cell metric medians across experiments: the perf trajectory.

    One row per (cell, metric) with a ``run<id>`` column per experiment.
    ``metric`` filters by substring, ``workload`` by exact family.
    """
    experiments = store.experiments(name)
    series: "Dict[tuple, Dict[int, float]]" = {}
    for experiment in experiments:
        for cell_key, metrics in store.cell_metrics(experiment["id"]).items():
            if workload is not None and not cell_key.startswith(f"{workload}|"):
                continue
            for metric_name, values in metrics.items():
                if metric is not None and metric not in metric_name:
                    continue
                series.setdefault((cell_key, metric_name), {})[experiment["id"]] = float(
                    statistics.median(values)
                )
    rows: "List[Dict]" = []
    for (cell_key, metric_name), by_experiment in sorted(series.items()):
        row: "Dict" = {"cell": cell_key, "metric": metric_name}
        for experiment in experiments:
            value = by_experiment.get(experiment["id"])
            row[f"run{experiment['id']}"] = "-" if value is None else value
        rows.append(row)
    return rows
