"""repro.experiments — the declarative experiment service.

The benchmark matrix as data: frozen :class:`ExperimentSpec` dataclasses
(loadable from TOML/JSON) describe workload family x dataset scale x
reducer x index kind x engine options; :func:`run_experiment` executes the
matrix with warmup/repeat control, records every trial (derived metrics
plus the full obs RunReport) into a stdlib-sqlite3 :class:`ResultsStore`,
and writes a ``BENCH_<spec>.json`` trajectory summary; :func:`evaluate_gates`
judges a run against the last committed baseline with the spec's threshold
rules.  ``repro experiment run/report/diff`` is the CLI surface.
"""

from __future__ import annotations

from .gates import GateViolation, diff_cells, evaluate_gates
from .report import experiment_rows, trend_rows
from .runner import (
    BENCH_SCHEMA_VERSION,
    RunSummary,
    derive_bound_ratios,
    load_bench,
    run_experiment,
    run_trial,
    summarise_cells,
    write_bench,
)
from .spec import (
    WORKLOAD_FAMILIES,
    EngineSpec,
    ExperimentSpec,
    GateRule,
    ReducerSpec,
    ScaleSpec,
    TrialSpec,
    expand,
    load_spec,
    spec_from_dict,
    spec_to_dict,
)
from .store import (
    STORE_SCHEMA_VERSION,
    ResultsStore,
    environment_facts,
    record_bench_trial,
)
from .workloads import WORKLOADS, make_trial_data, run_workload, supports

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "WORKLOAD_FAMILIES",
    "WORKLOADS",
    "EngineSpec",
    "ExperimentSpec",
    "GateRule",
    "GateViolation",
    "ReducerSpec",
    "ResultsStore",
    "RunSummary",
    "ScaleSpec",
    "TrialSpec",
    "derive_bound_ratios",
    "diff_cells",
    "environment_facts",
    "evaluate_gates",
    "expand",
    "experiment_rows",
    "load_bench",
    "load_spec",
    "make_trial_data",
    "record_bench_trial",
    "run_experiment",
    "run_trial",
    "run_workload",
    "spec_from_dict",
    "spec_to_dict",
    "summarise_cells",
    "supports",
    "trend_rows",
    "write_bench",
]
