"""Declarative experiment specs: a frozen matrix, expanded deterministically.

An :class:`ExperimentSpec` describes a benchmark matrix — workload family x
dataset scale x reducer x :class:`repro.IndexKind` x engine options — plus
run control (seed, warmup, repeats) and the regression-gate threshold rules
the spec's results are judged against.  Specs are plain data: loadable from
TOML or JSON (:func:`load_spec`), serialisable back (:func:`spec_to_dict`),
and expanded into an ordered tuple of :class:`TrialSpec` rows by
:func:`expand` — same spec, same trials, same per-trial seeds, every time.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..kinds import IndexKind

__all__ = [
    "WORKLOAD_FAMILIES",
    "ScaleSpec",
    "ReducerSpec",
    "EngineSpec",
    "GateRule",
    "ExperimentSpec",
    "TrialSpec",
    "expand",
    "load_spec",
    "spec_from_dict",
    "spec_to_dict",
]

#: the workload families the runner knows how to execute
#: (implementations live in :mod:`repro.experiments.workloads`)
WORKLOAD_FAMILIES = ("batch_knn", "ingest", "pruning", "serving", "continuous")

#: multiplier deriving per-cell seeds from the spec seed (any odd prime
#: keeps distinct cells on distinct streams; the value is part of the
#: reproducibility contract, so never change it silently)
_SEED_STRIDE = 7919

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class ScaleSpec:
    """One dataset scale of the matrix: synthetic random-walk dimensions."""

    name: str
    length: int = 128
    n_series: int = 256
    n_queries: int = 16
    #: rows streamed by the ``ingest`` workload (0 = half of ``n_series``)
    n_inserts: int = 0
    #: concurrent in-flight requests driven by the ``serving`` workload's
    #: loopback load (0 = derived: ``max(4 * n_queries, 64)``)
    n_inflight: int = 0
    #: standing k-NN subscriptions registered by the ``continuous``
    #: workload (0 = derived: ``max(n_queries, 8)``)
    n_subscriptions: int = 0

    def __post_init__(self):
        if self.length < 8 or self.n_series < 4 or self.n_queries < 1:
            raise ValueError(f"scale {self.name!r} is too small to measure")
        if self.n_inflight < 0:
            raise ValueError("n_inflight must be >= 0")
        if self.n_subscriptions < 0:
            raise ValueError("n_subscriptions must be >= 0")


@dataclass(frozen=True)
class ReducerSpec:
    """One reducer of the matrix, by paper name and coefficient budget."""

    method: str
    coefficients: int = 12

    def __post_init__(self):
        if self.coefficients < 2:
            raise ValueError("coefficients must be >= 2")

    @property
    def label(self) -> str:
        return f"{self.method}-{self.coefficients}"


@dataclass(frozen=True)
class EngineSpec:
    """Engine/durability options applied to every trial of a cell.

    ``fsync`` takes the :class:`repro.lifecycle.FsyncPolicy` values plus
    ``"off"`` (no WAL at all); only the ``ingest`` workload reads it.
    ``shards`` is the :class:`repro.serving.ShardedEngine` shard count; only
    the ``serving`` workload reads it (like ``fsync``, it still appears in
    every cell label when non-default — the label describes the spec'd
    options, not which family consumes each one).
    """

    k: int = 8
    mode: str = "auto"
    parallelism: int = 1
    lookahead: int = 1
    fsync: str = "batch"
    fsync_batch: int = 64
    shards: int = 1

    def __post_init__(self):
        if self.k < 1 or self.parallelism < 1 or self.lookahead < 1:
            raise ValueError("k, parallelism and lookahead must be >= 1")
        if self.fsync not in ("always", "batch", "never", "off"):
            raise ValueError(f"unknown fsync policy {self.fsync!r}")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    @property
    def label(self) -> str:
        parts = [f"k{self.k}", self.mode]
        if self.parallelism > 1:
            parts.append(f"par{self.parallelism}")
        if self.fsync != "batch":
            parts.append(f"fsync-{self.fsync}")
        if self.shards > 1:
            parts.append(f"sh{self.shards}")
        return "-".join(parts)


@dataclass(frozen=True)
class GateRule:
    """One regression threshold: flag ``metric`` moving the bad direction.

    ``direction="increase"`` treats growth beyond ``limit_pct`` percent over
    the baseline as a regression (latencies); ``"decrease"`` flags drops
    beyond ``limit_pct`` (throughput, pruning ratios).  ``workload`` limits
    the rule to one family; ``None`` applies it wherever the metric appears.
    """

    metric: str
    limit_pct: float
    direction: str = "increase"
    workload: Optional[str] = None

    def __post_init__(self):
        if self.direction not in ("increase", "decrease"):
            raise ValueError(f"direction must be increase/decrease, got {self.direction!r}")
        if self.limit_pct <= 0:
            raise ValueError("limit_pct must be positive")
        if self.workload is not None and self.workload not in WORKLOAD_FAMILIES:
            raise ValueError(f"unknown workload {self.workload!r} in gate rule")


@dataclass(frozen=True)
class ExperimentSpec:
    """A full declarative experiment: the matrix, run control, and gates."""

    name: str
    seed: int = 7
    warmup: int = 0
    repeats: int = 1
    workloads: "Tuple[str, ...]" = ("batch_knn",)
    scales: "Tuple[ScaleSpec, ...]" = (ScaleSpec("default"),)
    reducers: "Tuple[ReducerSpec, ...]" = (ReducerSpec("PAA"),)
    indexes: "Tuple[IndexKind, ...]" = (IndexKind.NONE,)
    engines: "Tuple[EngineSpec, ...]" = (EngineSpec(),)
    gates: "Tuple[GateRule, ...]" = ()

    def __post_init__(self):
        if not self.name or any(c in self.name for c in "/\\ "):
            raise ValueError(f"spec name {self.name!r} must be a bare token")
        if self.repeats < 1 or self.warmup < 0:
            raise ValueError("repeats must be >= 1 and warmup >= 0")
        unknown = [w for w in self.workloads if w not in WORKLOAD_FAMILIES]
        if unknown:
            raise ValueError(
                f"unknown workload families {unknown} (known: {list(WORKLOAD_FAMILIES)})"
            )
        if not (self.workloads and self.scales and self.reducers and self.indexes and self.engines):
            raise ValueError("every matrix axis needs at least one entry")


@dataclass(frozen=True)
class TrialSpec:
    """One executable cell-repeat of the expanded matrix."""

    index: int
    workload: str
    scale: ScaleSpec
    reducer: ReducerSpec
    index_kind: IndexKind
    engine: EngineSpec
    repeat: int
    seed: int

    @property
    def cell_key(self) -> str:
        """Stable identity of the matrix cell (repeats share it)."""
        return "|".join(
            (
                self.workload,
                self.scale.name,
                self.reducer.label,
                str(self.index_kind),
                self.engine.label,
            )
        )

    def axes(self) -> "Dict[str, object]":
        """Flat axis columns for store rows and report metadata."""
        return {
            "workload": self.workload,
            "scale": self.scale.name,
            "method": self.reducer.method,
            "coefficients": self.reducer.coefficients,
            "index_kind": str(self.index_kind),
            "engine": self.engine.label,
            "repeat": self.repeat,
            "seed": self.seed,
        }


def expand(spec: ExperimentSpec) -> "Tuple[TrialSpec, ...]":
    """The spec's trials in deterministic matrix order.

    Order is the declared axis order (workload, scale, reducer, index,
    engine), repeats innermost.  Every repeat of a cell shares the cell's
    seed — repeats measure timing variance over identical data — and seeds
    derive from ``spec.seed`` with a fixed stride, so re-expanding the same
    spec always reproduces the same workload inputs.
    """
    trials: "List[TrialSpec]" = []
    cell_index = 0
    for workload in spec.workloads:
        for scale in spec.scales:
            for reducer in spec.reducers:
                for index_kind in spec.indexes:
                    for engine in spec.engines:
                        cell_seed = spec.seed + _SEED_STRIDE * cell_index
                        for repeat in range(spec.repeats):
                            trials.append(
                                TrialSpec(
                                    index=len(trials),
                                    workload=workload,
                                    scale=scale,
                                    reducer=reducer,
                                    index_kind=index_kind,
                                    engine=engine,
                                    repeat=repeat,
                                    seed=cell_seed,
                                )
                            )
                        cell_index += 1
    return tuple(trials)


# ----------------------------------------------------------------------
# serialisation
# ----------------------------------------------------------------------
def spec_to_dict(spec: ExperimentSpec) -> dict:
    """Plain-data view of a spec (inverse of :func:`spec_from_dict`)."""
    payload = dataclasses.asdict(spec)
    payload["indexes"] = [str(kind) for kind in spec.indexes]
    payload["workloads"] = list(spec.workloads)
    return payload


def _tuple_of(cls, rows: "Sequence[dict]", label: str) -> tuple:
    out = []
    for row in rows:
        if not isinstance(row, dict):
            raise ValueError(f"every {label} entry must be a table/object, got {row!r}")
        try:
            out.append(cls(**row))
        except TypeError as exc:
            raise ValueError(f"bad {label} entry {row!r}: {exc}") from None
    return tuple(out)


def spec_from_dict(payload: dict) -> ExperimentSpec:
    """Build a validated spec from TOML/JSON plain data."""
    known = {f.name for f in dataclasses.fields(ExperimentSpec)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown spec keys: {sorted(unknown)} (known: {sorted(known)})")
    kwargs = dict(payload)
    if "workloads" in kwargs:
        kwargs["workloads"] = tuple(kwargs["workloads"])
    if "scales" in kwargs:
        kwargs["scales"] = _tuple_of(ScaleSpec, kwargs["scales"], "scales")
    if "reducers" in kwargs:
        kwargs["reducers"] = _tuple_of(ReducerSpec, kwargs["reducers"], "reducers")
    if "engines" in kwargs:
        kwargs["engines"] = _tuple_of(EngineSpec, kwargs["engines"], "engines")
    if "gates" in kwargs:
        kwargs["gates"] = _tuple_of(GateRule, kwargs["gates"], "gates")
    if "indexes" in kwargs:
        kwargs["indexes"] = tuple(IndexKind(value) for value in kwargs["indexes"])
    return ExperimentSpec(**kwargs)


def load_spec(path: PathLike) -> ExperimentSpec:
    """Load a spec from a ``.toml`` or ``.json`` file."""
    path = pathlib.Path(path)
    if path.suffix == ".toml":
        import tomllib

        payload = tomllib.loads(path.read_text())
    elif path.suffix == ".json":
        payload = json.loads(path.read_text())
    else:
        raise ValueError(f"spec files are .toml or .json, got {path.name!r}")
    return spec_from_dict(payload)
