"""Workload-family implementations shared by the runner and the benchmarks.

Each family is one function from a :class:`repro.experiments.TrialSpec` to a
flat ``{metric_name: float}`` dict of derived measurements.  The functions
are deliberately observation-free of side effects: the *caller* (the
experiment runner, or a benchmark) owns the obs capture around the call, so
the same measurement code produces both the derived metrics and the
RunReport counters/spans a trial row stores.

Inputs are synthetic random walks generated from the trial seed, matching
the committed benchmark scripts — same seed, same data, bit-identical
workload from one run to the next.
"""

from __future__ import annotations

import tempfile
import time
from typing import Callable, Dict, List

import numpy as np

from ..engine import ExecutionMode, QueryOptions
from ..index import SeriesDatabase
from ..kinds import DistanceMode, IndexKind
from ..reduction import REDUCERS
from .spec import WORKLOAD_FAMILIES, TrialSpec

__all__ = ["WORKLOADS", "supports", "run_workload", "make_trial_data"]


def make_trial_data(trial: TrialSpec) -> "tuple[np.ndarray, np.ndarray]":
    """The trial's (data, queries): seeded random walks plus noisy picks."""
    scale = trial.scale
    rng = np.random.default_rng(trial.seed)
    data = rng.normal(size=(scale.n_series, scale.length)).cumsum(axis=1)
    picks = rng.integers(0, scale.n_series, size=scale.n_queries)
    queries = data[picks] + rng.normal(scale=0.05, size=(scale.n_queries, scale.length))
    return data, queries


def _database(trial: TrialSpec) -> SeriesDatabase:
    reducer = REDUCERS[trial.reducer.method](n_coefficients=trial.reducer.coefficients)
    index = None if trial.index_kind is IndexKind.NONE else trial.index_kind
    return SeriesDatabase(reducer, index=index)


def _percentiles(values: "List[float]") -> "Dict[str, float]":
    ordered = sorted(values)
    out = {}
    for q, label in ((50, "p50"), (90, "p90"), (99, "p99")):
        rank = max(-(-q * len(ordered) // 100), 1)
        out[label] = ordered[min(rank, len(ordered)) - 1]
    return out


# ----------------------------------------------------------------------
# batch_knn: batched vs sequential engine throughput + serving latency
# ----------------------------------------------------------------------
def run_batch_knn(trial: TrialSpec) -> "Dict[str, float]":
    """Batched-engine throughput against the sequential baseline.

    Metrics: ``ingest_s``, ``sequential_qps``, ``batched_qps``, ``speedup``
    (whole-batch comparison, answers asserted identical via
    ``results_identical``), and ``latency_p50/p90/p99_ms`` — per-query
    serving latency measured as batch-of-1 calls, the number a latency gate
    should watch.
    """
    engine = trial.engine
    data, queries = make_trial_data(trial)
    db = _database(trial)
    started = time.perf_counter()
    db.ingest(data, bulk=db.tree is not None)
    ingest_s = time.perf_counter() - started

    options = QueryOptions(
        k=engine.k,
        mode=engine.mode,
        parallelism=engine.parallelism,
        lookahead=engine.lookahead,
    )
    started = time.perf_counter()
    sequential = db.knn_batch(
        queries, QueryOptions(k=engine.k, mode=ExecutionMode.SEQUENTIAL)
    )
    t_seq = time.perf_counter() - started
    started = time.perf_counter()
    batched = db.knn_batch(queries, options)
    t_bat = time.perf_counter() - started
    identical = all(
        a.ids == b.ids and a.distances == b.distances
        for a, b in zip(sequential.results, batched.results)
    )

    latencies_ms = []
    for query in queries:
        started = time.perf_counter()
        db.knn_batch(query[None, :], QueryOptions(k=engine.k, mode=engine.mode))
        latencies_ms.append((time.perf_counter() - started) * 1e3)

    metrics = {
        "ingest_s": ingest_s,
        "sequential_qps": len(queries) / t_seq,
        "batched_qps": len(queries) / t_bat,
        "speedup": t_seq / t_bat,
        "results_identical": float(identical),
    }
    metrics.update(
        {f"latency_{k}_ms": v for k, v in _percentiles(latencies_ms).items()}
    )
    return metrics


# ----------------------------------------------------------------------
# ingest: durable insert throughput under the spec'd fsync policy
# ----------------------------------------------------------------------
def run_ingest(trial: TrialSpec) -> "Dict[str, float]":
    """WAL-durable insert throughput into a saved database.

    Metrics: ``inserts_per_s``, ``wal_bytes`` and ``insert_p50/p99_ms``
    under the trial's fsync policy (``engine.fsync``; ``"off"`` disables
    the WAL entirely).
    """
    from ..io import open_database
    from ..lifecycle import DurabilityOptions

    scale = trial.scale
    n_inserts = scale.n_inserts or max(scale.n_series // 2, 32)
    data, _ = make_trial_data(trial)
    rng = np.random.default_rng(trial.seed + 1)
    stream = rng.normal(size=(n_inserts, scale.length)).cumsum(axis=1)
    if trial.engine.fsync == "off":
        durability = DurabilityOptions(wal=False)
    else:
        durability = DurabilityOptions(
            fsync=trial.engine.fsync, batch_records=trial.engine.fsync_batch
        )

    with tempfile.TemporaryDirectory(prefix="repro-exp-ingest-") as home:
        db = _database(trial)
        db.ingest(data)
        db.save(home)
        db = open_database(home, durability=durability)
        per_insert_ms: "List[float]" = []
        started = time.perf_counter()
        for row in stream:
            t0 = time.perf_counter()
            db.insert(row)
            per_insert_ms.append((time.perf_counter() - t0) * 1e3)
        if db.wal is not None:
            db.wal.sync()
        elapsed = time.perf_counter() - started
        wal_bytes = 0.0 if db.wal is None else float(db.wal.size_bytes())

    metrics = {
        "inserts_per_s": n_inserts / elapsed,
        "wal_bytes": wal_bytes,
        "insert_p50_ms": _percentiles(per_insert_ms)["p50"],
        "insert_p99_ms": _percentiles(per_insert_ms)["p99"],
    }
    return metrics


# ----------------------------------------------------------------------
# pruning: filter-and-refine quality (paper Fig. 13's axes)
# ----------------------------------------------------------------------
def run_pruning(trial: TrialSpec) -> "Dict[str, float]":
    """Pruning power and accuracy of filter-and-refine k-NN.

    Metrics: mean ``pruning_power`` (verified/total, paper Eq. 14), mean
    ``accuracy`` against exact ground truth, and per-query ``knn_*_ms``
    latency percentiles.  The per-bound pruning breakdown comes from the
    captured obs counters, not from here.
    """
    data, queries = make_trial_data(trial)
    db = _database(trial)
    db.ingest(data, bulk=db.tree is not None)
    k = trial.engine.k
    powers, accuracies, times_ms = [], [], []
    for query in queries:
        truth = db.ground_truth(query, k)
        started = time.perf_counter()
        result = db.knn(query, k)
        times_ms.append((time.perf_counter() - started) * 1e3)
        powers.append(result.pruning_power)
        accuracies.append(result.accuracy_against(truth))
    metrics = {
        "pruning_power": float(np.mean(powers)),
        "accuracy": float(np.mean(accuracies)),
    }
    metrics.update({f"knn_{k}_ms": v for k, v in _percentiles(times_ms).items()})
    return metrics


# ----------------------------------------------------------------------
# serving: sharded TCP scatter-gather under concurrent pipelined load
# ----------------------------------------------------------------------
#: reducers whose Dist_PAR is not a guaranteed lower bound; the serving
#: workload runs them under DistanceMode.LB so sharded scatter-gather is
#: provably bit-identical to the unsharded engine (the per-shard top-k
#: union only covers the global top-k for exact configurations).
_ADAPTIVE_METHODS = frozenset({"SAPLA", "APLA", "APCA"})


def run_serving(trial: TrialSpec) -> "Dict[str, float]":
    """Sharded ``repro serve`` throughput under pipelined loopback load.

    Partitions the trial database into ``engine.shards`` round-robin shards
    behind a :class:`repro.serving.ShardedEngine`, starts a loopback
    :class:`repro.serving.ReproServer`, and drives ``scale.n_inflight``
    single-query k-NN requests (0 = ``max(4 * n_queries, 64)``) pipelined
    over a handful of connections so they are all in flight at once.

    Metrics: ``serve_qps``, ``serve_p50/p99_ms`` (client-observed, queueing
    included), ``inflight_peak`` (the server's accepted waiting+executing
    high-water mark) and ``results_identical`` — every wire answer compared
    bit-for-bit (ids *and* distances) against the unsharded engine's.
    """
    import asyncio

    from ..serving import ReproServer, ServerConfig, ShardedEngine, encode_frame, read_frame

    engine_spec = trial.engine
    scale = trial.scale
    data, queries = make_trial_data(trial)
    reducer = REDUCERS[trial.reducer.method](n_coefficients=trial.reducer.coefficients)
    index = None if trial.index_kind is IndexKind.NONE else trial.index_kind
    mode = (
        DistanceMode.LB if trial.reducer.method in _ADAPTIVE_METHODS else DistanceMode.PAR
    )
    db = SeriesDatabase(reducer, index=index, distance_mode=mode)
    db.ingest(data, bulk=db.tree is not None)

    options = QueryOptions(k=engine_spec.k, mode=engine_spec.mode)
    reference = db.knn_batch(queries, options)
    expected = [
        ([int(i) for i in r.ids], [float(d) for d in r.distances])
        for r in reference.results
    ]

    sharded = ShardedEngine.from_database(db, engine_spec.shards)
    n_inflight = scale.n_inflight or max(4 * scale.n_queries, 64)
    requests = [
        {
            "id": i,
            "op": "knn",
            "queries": queries[i % scale.n_queries][None, :].tolist(),
            "k": engine_spec.k,
            "mode": str(ExecutionMode(engine_spec.mode)),
        }
        for i in range(n_inflight)
    ]
    config = ServerConfig(queue_depth=n_inflight + 16)

    async def _drive_connection(port: int, batch: "List[dict]") -> "List[tuple]":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        samples: "List[tuple]" = []
        try:
            sent = {}
            for frame in batch:
                sent[frame["id"]] = time.perf_counter()
                writer.write(encode_frame(frame))
            await writer.drain()
            for _ in batch:
                reply = await read_frame(reader)
                latency_ms = (time.perf_counter() - sent[reply["id"]]) * 1e3
                samples.append((reply["id"], latency_ms, reply))
        finally:
            writer.close()
            await writer.wait_closed()
        return samples

    async def _drive() -> "tuple[float, List[tuple], int]":
        server = ReproServer(sharded, config)
        await server.start()
        try:
            n_conns = min(8, n_inflight)
            batches = [requests[c::n_conns] for c in range(n_conns)]
            started = time.perf_counter()
            per_conn = await asyncio.gather(
                *(_drive_connection(server.port, batch) for batch in batches)
            )
            elapsed = time.perf_counter() - started
        finally:
            await server.stop()
        samples = [s for batch in per_conn for s in batch]
        return elapsed, samples, server.peak_in_flight

    elapsed, samples, peak = asyncio.run(_drive())
    sharded.close()

    identical = len(samples) == n_inflight
    latencies_ms: "List[float]" = []
    for rid, latency_ms, reply in samples:
        latencies_ms.append(latency_ms)
        want_ids, want_distances = expected[rid % scale.n_queries]
        answer = reply.get("results", ({},))[0] if reply.get("ok") else {}
        if answer.get("ids") != want_ids or answer.get("distances") != want_distances:
            identical = False

    metrics = {
        "serve_qps": n_inflight / elapsed,
        "inflight_peak": float(peak),
        "results_identical": float(identical),
    }
    metrics.update(
        {
            f"serve_{k}_ms": v
            for k, v in _percentiles(latencies_ms).items()
            if k in ("p50", "p99")
        }
    )
    return metrics


# ----------------------------------------------------------------------
# continuous: standing subscriptions under streaming ingest
# ----------------------------------------------------------------------
def run_continuous(trial: TrialSpec) -> "Dict[str, float]":
    """Insert-to-notify latency of standing k-NN subscriptions over TCP.

    Registers ``scale.n_subscriptions`` standing :class:`repro.continuous.
    KnnWatch` queries (0 = ``max(n_queries, 8)``) on one subscriber
    connection of a loopback :class:`repro.serving.ReproServer`, then
    streams ``scale.n_inserts`` rows through a second connection.  Every
    other streamed row is a noisy copy of a subscription query, so deltas
    are guaranteed; latency is measured from just before the insert frame
    is written to the moment its push frame is read back, matched by the
    ``generation`` the insert response and the notification both carry.

    Metrics: ``notify_p50/p99_ms``, ``notifications`` (delta pushes
    received), ``insert_qps``, and ``results_identical`` — each
    subscription's final pushed frontier compared bit-for-bit (ids *and*
    distances) against re-running its query from scratch on a fresh engine
    fed the same rows.
    """
    import asyncio
    import json
    import struct

    from ..continuous import KnnWatch
    from ..serving import ReproServer, ServerConfig, ShardedEngine, encode_frame, read_frame

    engine_spec = trial.engine
    scale = trial.scale
    data, queries = make_trial_data(trial)
    mode = (
        DistanceMode.LB if trial.reducer.method in _ADAPTIVE_METHODS else DistanceMode.PAR
    )

    def _build_engine():
        reducer = REDUCERS[trial.reducer.method](
            n_coefficients=trial.reducer.coefficients
        )
        index = None if trial.index_kind is IndexKind.NONE else trial.index_kind
        db = SeriesDatabase(reducer, index=index, distance_mode=mode)
        db.ingest(data, bulk=db.tree is not None)
        if engine_spec.shards > 1:
            return ShardedEngine.from_database(db, engine_spec.shards)
        return db

    n_subs = scale.n_subscriptions or max(scale.n_queries, 8)
    n_inserts = scale.n_inserts or max(scale.n_series // 2, 32)
    rng = np.random.default_rng(trial.seed + 1)
    wild = rng.normal(size=(n_inserts, scale.length)).cumsum(axis=1)
    picks = rng.integers(0, scale.n_queries, size=n_inserts)
    near = queries[picks] + rng.normal(scale=0.05, size=(n_inserts, scale.length))
    stream = np.where((np.arange(n_inserts) % 2 == 0)[:, None], near, wild)
    sub_queries = [queries[i % scale.n_queries] for i in range(n_subs)]

    engine = _build_engine()
    config = ServerConfig(
        queue_depth=n_subs + n_inserts + 64, notify_queue=n_inserts + 8
    )
    received: "List[tuple]" = []  # (recv_perf_counter, notification payload)
    gen_t0: "Dict[object, float]" = {}  # insert's resulting generation -> send t0
    timings: "Dict[str, float]" = {}

    def _gen_key(generation):
        return tuple(generation) if isinstance(generation, list) else generation

    async def _drive() -> "List[str]":
        server = ReproServer(engine, config)
        await server.start()
        try:
            sub_reader, sub_writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            mut_reader, mut_writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                # register every standing query, collect acks + initial pushes
                for i, query in enumerate(sub_queries):
                    watch = KnnWatch(query=query, k=engine_spec.k)
                    sub_writer.write(
                        encode_frame(
                            {"id": i, "op": "subscribe", "query": watch.to_payload()}
                        )
                    )
                await sub_writer.drain()
                sids_by_rid: "Dict[int, str]" = {}
                while len(sids_by_rid) < n_subs or len(received) < n_subs:
                    frame = await read_frame(sub_reader)
                    if frame.get("op") == "notify":
                        received.append((time.perf_counter(), frame["notification"]))
                    else:
                        sids_by_rid[frame["id"]] = str(frame["subscription_id"])
                sids = [sids_by_rid[i] for i in range(n_subs)]

                done = asyncio.Event()

                async def _mutate() -> None:
                    started = time.perf_counter()
                    for i, row in enumerate(stream):
                        t0 = time.perf_counter()
                        mut_writer.write(
                            encode_frame(
                                {"id": i, "op": "insert", "series": row.tolist()}
                            )
                        )
                        await mut_writer.drain()
                        reply = await read_frame(mut_reader)
                        gen_t0[_gen_key(reply["generation"])] = t0
                    timings["mutate_s"] = time.perf_counter() - started
                    done.set()

                async def _listen() -> None:
                    # cancellation-safe framing: buffer raw bytes ourselves so
                    # a timed-out read never strands half a frame
                    buffer = bytearray()
                    quiet = 0
                    while True:
                        try:
                            chunk = await asyncio.wait_for(
                                sub_reader.read(1 << 16), timeout=0.5
                            )
                        except asyncio.TimeoutError:
                            if done.is_set() and not buffer:
                                quiet += 1
                                if quiet >= 2:
                                    return
                            continue
                        if not chunk:
                            return
                        quiet = 0
                        buffer.extend(chunk)
                        while len(buffer) >= 4:
                            (length,) = struct.unpack(">I", bytes(buffer[:4]))
                            if len(buffer) < 4 + length:
                                break
                            body = bytes(buffer[4 : 4 + length])
                            del buffer[: 4 + length]
                            frame = json.loads(body.decode("utf-8"))
                            if frame.get("op") == "notify":
                                received.append(
                                    (time.perf_counter(), frame["notification"])
                                )

                await asyncio.gather(_mutate(), _listen())
                return sids
            finally:
                for writer in (sub_writer, mut_writer):
                    writer.close()
                    await writer.wait_closed()
        finally:
            await server.stop()

    sids = asyncio.run(_drive())
    closer = getattr(engine, "close", None)
    if callable(closer):
        closer()

    # latency per delta push + each subscription's final pushed frontier
    latencies_ms: "List[float]" = []
    state: "Dict[str, tuple]" = {}  # sid -> (seq, notification payload)
    for recv_t, note in received:
        sid = note["subscription_id"]
        if sid not in state or note["seq"] > state[sid][0]:
            state[sid] = (note["seq"], note)
        t0 = gen_t0.get(_gen_key(note.get("generation")))
        if t0 is not None:
            latencies_ms.append((recv_t - t0) * 1e3)

    scratch = _build_engine()
    for row in stream:
        scratch.insert(row)
    batch = scratch.knn_batch(
        np.asarray(sub_queries), QueryOptions(k=engine_spec.k)
    )
    identical = len(state) == n_subs and bool(latencies_ms)
    for i, result in enumerate(batch.results):
        note = state.get(sids[i], (0, None))[1]
        if note is None:
            identical = False
            continue
        want_ids = [int(g) for g in result.ids]
        want_distances = [float(d) for d in result.distances]
        if note["ids"] != want_ids or note["distances"] != want_distances:
            identical = False
    closer = getattr(scratch, "close", None)
    if callable(closer):
        closer()

    metrics = {
        "notifications": float(len(latencies_ms)),
        "insert_qps": n_inserts / timings["mutate_s"],
        "results_identical": float(identical),
    }
    metrics.update(
        {
            f"notify_{k}_ms": v
            for k, v in _percentiles(latencies_ms or [0.0]).items()
            if k in ("p50", "p99")
        }
    )
    return metrics


#: family name -> implementation; keys mirror spec.WORKLOAD_FAMILIES
WORKLOADS: "Dict[str, Callable[[TrialSpec], Dict[str, float]]]" = {
    "batch_knn": run_batch_knn,
    "ingest": run_ingest,
    "pruning": run_pruning,
    "serving": run_serving,
    "continuous": run_continuous,
}
assert tuple(WORKLOADS) == WORKLOAD_FAMILIES

#: index kinds each family can execute (others are skipped, not failed)
_SUPPORTED_INDEXES = {
    "batch_knn": (IndexKind.NONE, IndexKind.DBCH, IndexKind.RTREE),
    "ingest": (IndexKind.DBCH, IndexKind.RTREE),
    "pruning": (IndexKind.NONE, IndexKind.DBCH, IndexKind.RTREE),
    "serving": (IndexKind.NONE, IndexKind.DBCH, IndexKind.RTREE),
    "continuous": (IndexKind.NONE, IndexKind.DBCH, IndexKind.RTREE),
}


def supports(trial: TrialSpec) -> bool:
    """Whether the trial's workload can execute this matrix cell."""
    return trial.index_kind in _SUPPORTED_INDEXES[trial.workload]


def run_workload(trial: TrialSpec) -> "Dict[str, float]":
    """Execute one trial's workload and return its derived metrics."""
    return WORKLOADS[trial.workload](trial)
