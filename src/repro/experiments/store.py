"""SQLite-backed results store for the experiment service.

Stdlib-``sqlite3`` only.  Four schema'd tables:

* ``experiments`` — one row per matrix execution (spec JSON, seed, time);
* ``trials`` — one row per executed trial: matrix axes, status, elapsed
  wall seconds, and the full schema-versioned RunReport JSON;
* ``metrics`` — flat scalar rows per trial: the RunReport flattened through
  its stable :meth:`repro.obs.RunReport.trial_metrics` contract (counters,
  gauges, histogram fields, span timings) plus the workload's ``derived``
  measurements;
* ``environment`` — interpreter/platform facts per experiment, so a
  regression can be told apart from a machine change.

The store is the queryable perf trajectory: the runner writes it, the
report/diff commands read it, and :meth:`ResultsStore.export_json` emits a
text snapshot suitable for committing next to ``BENCH_*.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sqlite3
import time
from typing import Dict, List, Optional, Union

from ..obs.report import RunReport
from .spec import ExperimentSpec, TrialSpec, spec_to_dict

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ResultsStore",
    "environment_facts",
    "record_bench_trial",
]

#: bump when a table or column changes meaning; recorded in every store
STORE_SCHEMA_VERSION = 1

PathLike = Union[str, pathlib.Path]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_info (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS experiments (
    id           INTEGER PRIMARY KEY,
    name         TEXT NOT NULL,
    seed         INTEGER NOT NULL,
    spec_json    TEXT NOT NULL,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    id            INTEGER PRIMARY KEY,
    experiment_id INTEGER NOT NULL REFERENCES experiments(id),
    trial_index   INTEGER NOT NULL,
    cell_key      TEXT NOT NULL,
    workload      TEXT NOT NULL,
    scale         TEXT NOT NULL,
    method        TEXT NOT NULL,
    coefficients  INTEGER NOT NULL,
    index_kind    TEXT NOT NULL,
    engine        TEXT NOT NULL,
    repeat        INTEGER NOT NULL,
    seed          INTEGER NOT NULL,
    status        TEXT NOT NULL,
    elapsed_s     REAL NOT NULL,
    report_schema TEXT NOT NULL,
    report_json   TEXT NOT NULL,
    created_unix  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    trial_id INTEGER NOT NULL REFERENCES trials(id),
    name     TEXT NOT NULL,
    kind     TEXT NOT NULL,
    value    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS environment (
    experiment_id INTEGER NOT NULL REFERENCES experiments(id),
    key           TEXT NOT NULL,
    value         TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_trials_experiment ON trials(experiment_id);
CREATE INDEX IF NOT EXISTS idx_metrics_trial ON metrics(trial_id);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics(name);
"""


def environment_facts() -> "Dict[str, object]":
    """Interpreter and platform facts recorded with every experiment.

    Numeric facts stay numbers (``cpu_count: 1``, not ``"1"``) so exported
    JSON reports are typed correctly; sqlite's TEXT affinity still stores
    them as text in the ``environment`` table.
    """
    import numpy

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def _typed_fact(value: str):
    """Recover a numeric environment fact from its TEXT-column string."""
    try:
        return int(value)
    except (TypeError, ValueError):
        return value


class ResultsStore:
    """One sqlite database of experiments, trials, metrics and environment."""

    def __init__(self, path: PathLike):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        row = self._conn.execute("SELECT version FROM schema_info").fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO schema_info (version) VALUES (?)", (STORE_SCHEMA_VERSION,)
            )
        elif row["version"] != STORE_SCHEMA_VERSION:
            raise ValueError(
                f"store {self.path} has schema v{row['version']}, "
                f"this build reads v{STORE_SCHEMA_VERSION}"
            )
        self._conn.commit()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying sqlite connection."""
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def create_experiment(self, spec: ExperimentSpec) -> int:
        """Open a new experiment row (plus environment facts); returns its id."""
        cursor = self._conn.execute(
            "INSERT INTO experiments (name, seed, spec_json, created_unix) "
            "VALUES (?, ?, ?, ?)",
            (spec.name, spec.seed, json.dumps(spec_to_dict(spec)), time.time()),
        )
        experiment_id = int(cursor.lastrowid)
        self._conn.executemany(
            "INSERT INTO environment (experiment_id, key, value) VALUES (?, ?, ?)",
            [(experiment_id, k, v) for k, v in sorted(environment_facts().items())],
        )
        self._conn.commit()
        return experiment_id

    def record_trial(
        self,
        experiment_id: int,
        trial: TrialSpec,
        report: RunReport,
        derived: "Dict[str, float]",
        status: str = "ok",
        elapsed_s: float = 0.0,
    ) -> int:
        """Persist one trial row plus its flattened metric rows."""
        axes = trial.axes()
        cursor = self._conn.execute(
            "INSERT INTO trials (experiment_id, trial_index, cell_key, workload, "
            "scale, method, coefficients, index_kind, engine, repeat, seed, status, "
            "elapsed_s, report_schema, report_json, created_unix) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                experiment_id,
                trial.index,
                trial.cell_key,
                axes["workload"],
                axes["scale"],
                axes["method"],
                axes["coefficients"],
                axes["index_kind"],
                axes["engine"],
                axes["repeat"],
                axes["seed"],
                status,
                elapsed_s,
                report.schema,
                report.to_json(indent=None),
                time.time(),
            ),
        )
        trial_id = int(cursor.lastrowid)
        rows = [
            (trial_id, row["name"], row["kind"], row["value"])
            for row in report.trial_metrics()
        ]
        rows.extend(
            (trial_id, name, "derived", float(value))
            for name, value in sorted(derived.items())
        )
        self._conn.executemany(
            "INSERT INTO metrics (trial_id, name, kind, value) VALUES (?, ?, ?, ?)", rows
        )
        self._conn.commit()
        return trial_id

    # ------------------------------------------------------------------
    def experiments(self, name: "Optional[str]" = None) -> "List[sqlite3.Row]":
        """Experiment rows, oldest first, optionally filtered by spec name."""
        if name is None:
            query = "SELECT * FROM experiments ORDER BY id"
            return list(self._conn.execute(query))
        return list(
            self._conn.execute(
                "SELECT * FROM experiments WHERE name = ? ORDER BY id", (name,)
            )
        )

    def latest_experiment(self, name: "Optional[str]" = None) -> "Optional[sqlite3.Row]":
        """The most recent experiment row (by id), or ``None``."""
        rows = self.experiments(name)
        return rows[-1] if rows else None

    def trials(self, experiment_id: int) -> "List[sqlite3.Row]":
        """Trial rows of one experiment in execution order."""
        return list(
            self._conn.execute(
                "SELECT * FROM trials WHERE experiment_id = ? ORDER BY trial_index",
                (experiment_id,),
            )
        )

    def trial_metrics(self, trial_id: int) -> "Dict[str, float]":
        """All metric rows of one trial as ``{name: value}``."""
        return {
            row["name"]: row["value"]
            for row in self._conn.execute(
                "SELECT name, value FROM metrics WHERE trial_id = ? ORDER BY name",
                (trial_id,),
            )
        }

    def cell_metrics(
        self, experiment_id: int, kinds: "tuple[str, ...]" = ("derived",)
    ) -> "Dict[str, Dict[str, List[float]]]":
        """Per-cell metric series: ``{cell_key: {metric: [v per repeat]}}``."""
        query = (
            "SELECT t.cell_key AS cell_key, m.name AS name, m.value AS value "
            "FROM trials t JOIN metrics m ON m.trial_id = t.id "
            "WHERE t.experiment_id = ? AND t.status = 'ok' AND m.kind IN "
            f"({','.join('?' * len(kinds))}) ORDER BY t.trial_index, m.name"
        )
        out: "Dict[str, Dict[str, List[float]]]" = {}
        for row in self._conn.execute(query, (experiment_id, *kinds)):
            out.setdefault(row["cell_key"], {}).setdefault(row["name"], []).append(
                row["value"]
            )
        return out

    def environment(self, experiment_id: int) -> "Dict[str, object]":
        """The environment facts recorded with one experiment.

        Numeric facts (``cpu_count``) come back as numbers even though the
        TEXT column stores them as strings, so the round trip matches
        :func:`environment_facts`.
        """
        return {
            row["key"]: _typed_fact(row["value"])
            for row in self._conn.execute(
                "SELECT key, value FROM environment WHERE experiment_id = ? ORDER BY key",
                (experiment_id,),
            )
        }

    # ------------------------------------------------------------------
    def export_json(self, path: PathLike) -> pathlib.Path:
        """Dump every table to one JSON file (a committable store snapshot)."""
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "experiments": [dict(r) for r in self._conn.execute(
                "SELECT * FROM experiments ORDER BY id"
            )],
            "trials": [dict(r) for r in self._conn.execute(
                "SELECT * FROM trials ORDER BY id"
            )],
            "metrics": [dict(r) for r in self._conn.execute(
                "SELECT rowid, * FROM metrics ORDER BY rowid"
            )],
            "environment": [dict(r) for r in self._conn.execute(
                "SELECT rowid, * FROM environment ORDER BY rowid"
            )],
        }
        path = pathlib.Path(path)
        path.write_text(json.dumps(payload, indent=1) + "\n")
        return path


def record_bench_trial(
    path: PathLike,
    bench: str,
    trial: TrialSpec,
    report: RunReport,
    derived: "Dict[str, float]",
    elapsed_s: float = 0.0,
) -> int:
    """Record one ad-hoc benchmark trial into the store at ``path``.

    The committed ``bench_*.py`` scripts call this (through the benchmarks'
    ``publish_trial`` fixture) so a standalone bench run lands in the same
    queryable trajectory as a full ``repro experiment run``.  Each call opens
    a single-cell experiment named ``bench-<bench>`` wrapping the trial's
    own axes, so report/diff tooling sees it like any other experiment.
    """
    spec = ExperimentSpec(
        name=f"bench-{bench}",
        seed=trial.seed,
        workloads=(trial.workload,),
        scales=(trial.scale,),
        reducers=(trial.reducer,),
        indexes=(trial.index_kind,),
        engines=(trial.engine,),
    )
    with ResultsStore(path) as store:
        experiment_id = store.create_experiment(spec)
        return store.record_trial(
            experiment_id, trial, report, derived, elapsed_s=elapsed_s
        )


