"""The experiment runner: spec -> trials -> store -> ``BENCH_<spec>.json``.

:func:`run_experiment` expands a spec's matrix, executes every supported
trial with warmup/repeat control, captures a schema-versioned RunReport per
trial (metrics registry + span tree swapped in around the workload call, so
trials never contaminate each other or the caller), records each trial into
the :class:`repro.experiments.ResultsStore`, and finally writes the
``BENCH_<spec>.json`` trajectory summary — per-cell medians of the derived
metrics plus pruning-counter ratios — at the chosen root.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from .. import obs
from ..obs.report import RunReport
from .spec import ExperimentSpec, TrialSpec, expand, spec_to_dict
from .store import ResultsStore, environment_facts
from .workloads import run_workload, supports

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "RunSummary",
    "run_experiment",
    "run_trial",
    "derive_bound_ratios",
    "summarise_cells",
    "write_bench",
    "load_bench",
]

#: schema tag of the ``BENCH_<spec>.json`` trajectory files
BENCH_SCHEMA_VERSION = "repro.experiments/1"

PathLike = Union[str, pathlib.Path]


@dataclass
class RunSummary:
    """What one matrix execution produced (returned by :func:`run_experiment`)."""

    spec: ExperimentSpec
    experiment_id: int
    store_path: pathlib.Path
    bench_path: "Optional[pathlib.Path]"
    cells: "List[Dict]" = field(default_factory=list)
    n_trials: int = 0
    n_skipped: int = 0
    n_failed: int = 0
    elapsed_s: float = 0.0


def derive_bound_ratios(report: RunReport) -> "Dict[str, float]":
    """Per-bound pruning ratios reconstructed from a trial's obs counters.

    ``pruned_ratio.<bound>`` is the fraction of representation-stage
    candidates that bound discarded; ``verified_ratio`` is the fraction that
    survived to raw verification (the aggregate pruning power, Eq. 14).
    Empty when the trial ran no filter-and-refine queries.
    """
    counters = report.counters
    verified = counters.get("knn.entries_refined", 0)
    pruned = {
        mode: counters[name]
        for mode, name in obs.PRUNED_METRICS.items()
        if counters.get(name)
    }
    total = verified + sum(pruned.values())
    if not total:
        return {}
    ratios = {f"pruned_ratio.{mode}": n / total for mode, n in sorted(pruned.items())}
    ratios["verified_ratio"] = verified / total
    return ratios


def run_trial(trial: TrialSpec) -> "tuple[Dict[str, float], RunReport, float]":
    """Execute one trial under a fresh obs capture.

    Returns ``(derived_metrics, report, elapsed_s)``.  The derived metrics
    include the pruning-counter ratios reconstructed from the report, and
    the report's meta carries the trial's matrix axes.  The caller's
    registry/recorder are untouched — the trial records into its own.
    """
    previous_registry = obs.set_registry(obs.MetricsRegistry(enabled=True))
    previous_recorder = obs.set_recorder(obs.SpanRecorder(enabled=True))
    started = time.perf_counter()
    try:
        with obs.span("experiments.trial"):
            derived = dict(run_workload(trial))
        elapsed = time.perf_counter() - started
        report = RunReport.collect(
            meta={"spec_trial": trial.index, "cell": trial.cell_key, **trial.axes()}
        )
    finally:
        obs.set_registry(previous_registry)
        obs.set_recorder(previous_recorder)
    derived.update(derive_bound_ratios(report))
    return derived, report, elapsed


def summarise_cells(
    spec: ExperimentSpec, per_cell: "Dict[str, Dict[str, List[float]]]"
) -> "List[Dict]":
    """Per-cell median metrics in matrix order (the BENCH ``cells`` rows)."""
    axes_by_key: "Dict[str, Dict]" = {}
    for trial in expand(spec):
        if trial.repeat == 0:
            axes = trial.axes()
            axes.pop("repeat")
            axes.pop("seed")
            axes_by_key[trial.cell_key] = axes
    cells = []
    for cell_key, axes in axes_by_key.items():
        series = per_cell.get(cell_key)
        if not series:
            continue
        cells.append(
            {
                "cell": cell_key,
                **axes,
                "repeats": max(len(values) for values in series.values()),
                "metrics": {
                    name: float(statistics.median(values))
                    for name, values in sorted(series.items())
                },
            }
        )
    return cells


def run_experiment(
    spec: ExperimentSpec,
    store_path: PathLike,
    bench_dir: "Optional[PathLike]" = ".",
    progress: "Optional[Callable[[str], None]]" = None,
) -> RunSummary:
    """Execute the spec's matrix end to end; see the module docstring."""
    say = progress or (lambda message: None)
    started = time.perf_counter()
    trials = expand(spec)
    summary: "Optional[RunSummary]" = None
    with ResultsStore(store_path) as store:
        experiment_id = store.create_experiment(spec)
        say(
            f"experiment {spec.name!r} (id {experiment_id}): "
            f"{len(trials)} trials over {len(trials) // spec.repeats} cells"
        )
        n_ok = n_failed = n_skipped = 0
        with obs.span("experiments.run"):
            for trial in trials:
                if not supports(trial):
                    n_skipped += 1
                    obs.count("experiments.trials_skipped")
                    continue
                for _ in range(spec.warmup if trial.repeat == 0 else 0):
                    run_workload(trial)
                try:
                    derived, report, elapsed = run_trial(trial)
                except Exception as exc:  # record the failure, keep the matrix going
                    n_failed += 1
                    obs.count("experiments.trial_failures")
                    say(f"  trial {trial.index} ({trial.cell_key}) FAILED: {exc}")
                    store.record_trial(
                        experiment_id,
                        trial,
                        RunReport.collect(meta={"error": str(exc), **trial.axes()}),
                        {},
                        status="failed",
                    )
                    continue
                n_ok += 1
                obs.count("experiments.trials")
                obs.observe("experiments.trial_wall_s", elapsed)
                store.record_trial(
                    experiment_id, trial, report, derived, elapsed_s=elapsed
                )
                say(f"  trial {trial.index} ({trial.cell_key}) {elapsed:.2f}s")
        cells = summarise_cells(spec, store.cell_metrics(experiment_id))
        summary = RunSummary(
            spec=spec,
            experiment_id=experiment_id,
            store_path=pathlib.Path(store_path),
            bench_path=None,
            cells=cells,
            n_trials=n_ok,
            n_skipped=n_skipped,
            n_failed=n_failed,
            elapsed_s=time.perf_counter() - started,
        )
    if bench_dir is not None:
        summary.bench_path = write_bench(summary, bench_dir)
        say(f"wrote {summary.bench_path}")
    return summary


# ----------------------------------------------------------------------
# BENCH_<spec>.json trajectory files
# ----------------------------------------------------------------------
def write_bench(summary: RunSummary, bench_dir: PathLike) -> pathlib.Path:
    """Write the run's ``BENCH_<spec>.json`` trajectory summary."""
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "spec": spec_to_dict(summary.spec),
        "experiment_id": summary.experiment_id,
        "created_unix": time.time(),
        "environment": environment_facts(),
        "n_trials": summary.n_trials,
        "n_skipped": summary.n_skipped,
        "n_failed": summary.n_failed,
        "elapsed_s": summary.elapsed_s,
        "cells": summary.cells,
    }
    path = pathlib.Path(bench_dir) / f"BENCH_{summary.spec.name}.json"
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def load_bench(path: PathLike) -> dict:
    """Read a ``BENCH_<spec>.json`` file back, checking its schema tag."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trajectory schema {payload.get('schema')!r} in {path} "
            f"(expected {BENCH_SCHEMA_VERSION!r})"
        )
    return payload
