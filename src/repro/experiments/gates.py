"""Regression gates: judge a run's cells against a committed baseline.

:func:`evaluate_gates` applies a spec's :class:`repro.experiments.GateRule`
thresholds to two cell summaries (baseline vs current, both in the
``BENCH_<spec>.json`` ``cells`` shape) and returns every violation — which
rule, which cell, baseline and current values, and the percent change that
crossed the threshold.  :func:`diff_cells` renders the full comparison as
table rows with a pass/fail verdict per gated metric, the output of
``repro experiment diff``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .. import obs
from ..obs.report import _ms_display
from .spec import ExperimentSpec, GateRule

__all__ = ["GateViolation", "evaluate_gates", "diff_cells"]


@dataclass(frozen=True)
class GateViolation:
    """One threshold crossing: the rule, the cell, and the numbers."""

    rule: GateRule
    cell: str
    baseline: float
    current: float
    change_pct: float

    def describe(self) -> str:
        """Human-readable one-liner naming the violated threshold.

        Seconds-valued metrics display in milliseconds (``*_ms``) so every
        duration in a diff reads in one unit; the percent change is
        scale-invariant, so the judgement is identical either way.
        """
        shown, scale = _ms_display(self.rule.metric)
        sign = "+" if self.change_pct >= 0 else ""
        return (
            f"{self.cell}: {shown} {self.baseline * scale:.6g} -> "
            f"{self.current * scale:.6g} ({sign}{self.change_pct:.1f}%) violates "
            f"max {self.rule.direction} of {self.rule.limit_pct:g}%"
        )


def _cells_by_key(cells: "Sequence[Dict]") -> "Dict[str, Dict]":
    return {cell["cell"]: cell for cell in cells}


def _change_pct(baseline: float, current: float) -> float:
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return (current - baseline) / abs(baseline) * 100.0


def _violates(rule: GateRule, change_pct: float) -> bool:
    if rule.direction == "increase":
        return change_pct > rule.limit_pct
    return change_pct < -rule.limit_pct


def evaluate_gates(
    spec: ExperimentSpec,
    baseline_cells: "Sequence[Dict]",
    current_cells: "Sequence[Dict]",
) -> "List[GateViolation]":
    """Every gate violation of ``current`` against ``baseline``.

    A rule applies to each current cell whose workload matches (or to all of
    them when the rule names none) and whose metric exists on both sides;
    cells or metrics missing from the baseline cannot regress and are
    skipped.  The count of violations is recorded on the
    ``experiments.gate_violations`` counter.
    """
    baseline = _cells_by_key(baseline_cells)
    violations: "List[GateViolation]" = []
    for cell in current_cells:
        base = baseline.get(cell["cell"])
        if base is None:
            continue
        for rule in spec.gates:
            if rule.workload is not None and cell["workload"] != rule.workload:
                continue
            current_value = cell["metrics"].get(rule.metric)
            baseline_value = base["metrics"].get(rule.metric)
            if current_value is None or baseline_value is None:
                continue
            change = _change_pct(baseline_value, current_value)
            if _violates(rule, change):
                violations.append(
                    GateViolation(rule, cell["cell"], baseline_value, current_value, change)
                )
    if violations:
        obs.count("experiments.gate_violations", len(violations))
    return violations


def diff_cells(
    spec: ExperimentSpec,
    baseline_cells: "Sequence[Dict]",
    current_cells: "Sequence[Dict]",
) -> "List[Dict]":
    """Gated-metric comparison rows (one per cell x applicable rule).

    Displayed values are unit-normalized: seconds-valued metrics (``*_s``,
    excluding ``*_per_s`` rates) render in milliseconds under a ``*_ms``
    metric label, matching ``repro stats``.  Gate evaluation itself works
    on percent change, which scaling cannot affect.
    """
    baseline = _cells_by_key(baseline_cells)
    rows: "List[Dict]" = []
    for cell in current_cells:
        base = baseline.get(cell["cell"])
        for rule in spec.gates:
            if rule.workload is not None and cell["workload"] != rule.workload:
                continue
            current_value = cell["metrics"].get(rule.metric)
            if current_value is None:
                continue
            shown, scale = _ms_display(rule.metric)
            baseline_value = None if base is None else base["metrics"].get(rule.metric)
            if baseline_value is None:
                rows.append(
                    {
                        "cell": cell["cell"],
                        "metric": shown,
                        "baseline": "-",
                        "current": current_value * scale,
                        "change_pct": "-",
                        "limit": f"{rule.direction} {rule.limit_pct:g}%",
                        "verdict": "new",
                    }
                )
                continue
            change = _change_pct(baseline_value, current_value)
            rows.append(
                {
                    "cell": cell["cell"],
                    "metric": shown,
                    "baseline": baseline_value * scale,
                    "current": current_value * scale,
                    "change_pct": round(change, 2),
                    "limit": f"{rule.direction} {rule.limit_pct:g}%",
                    "verdict": "FAIL" if _violates(rule, change) else "ok",
                }
            )
    return rows
