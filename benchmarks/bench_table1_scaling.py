"""Table 1 — reduction-time scaling of each method with series length.

The paper's complexity claims, checked empirically: the O(n) family
(PLA/PAA) is fastest; APCA's O(n log n) stays close; SAPLA's
O(n (N + log n)) lands in between; APLA's error matrix dominates everything
and grows fastest with n, which is the gap SAPLA exists to close.
"""

import numpy as np

from repro.bench import run_scaling
from repro.bench.experiments import make_reducer

from conftest import publish_table

LENGTHS = (64, 128, 256)


def test_table1_scaling(benchmark, bench_report):
    with bench_report("table1_scaling"):
        rows = run_scaling(lengths=LENGTHS, repeats=3)
    publish_table("table1_scaling", "Table 1 — reduction time vs series length", rows)

    at_longest = {
        row["method"]: row["reduction_time_s"] for row in rows if row["n"] == LENGTHS[-1]
    }
    # APLA is the slowest method at the longest length (the paper's headline)
    assert at_longest["APLA"] == max(at_longest.values())
    # SAPLA beats APLA by a widening factor as n grows
    assert at_longest["SAPLA"] < at_longest["APLA"]
    ratios = []
    for n in LENGTHS:
        at_n = {r["method"]: r["reduction_time_s"] for r in rows if r["n"] == n}
        if at_n["SAPLA"] > 0:
            ratios.append(at_n["APLA"] / at_n["SAPLA"])
    assert ratios[-1] > 1.0  # APLA slower at the largest n
    # the O(n) family is the fastest tier
    assert min(at_longest, key=at_longest.get) in ("PLA", "PAA")

    series = np.random.default_rng(0).normal(size=LENGTHS[-1]).cumsum()
    benchmark(make_reducer("SAPLA", 12).transform, series)


def test_table1_apla_vs_sapla_gap_grows(benchmark, bench_report):
    """The SAPLA speedup over APLA grows with n (paper: about n times)."""
    with bench_report("table1_scaling_gap"):
        rows = run_scaling(lengths=(64, 256), methods=("SAPLA", "APLA"), repeats=3)
    by = {(r["method"], r["n"]): r["reduction_time_s"] for r in rows}
    small_ratio = by[("APLA", 64)] / max(by[("SAPLA", 64)], 1e-9)
    large_ratio = by[("APLA", 256)] / max(by[("SAPLA", 256)], 1e-9)
    assert large_ratio > small_ratio

    series = np.random.default_rng(1).normal(size=128).cumsum()
    benchmark(make_reducer("APLA", 12).transform, series)
