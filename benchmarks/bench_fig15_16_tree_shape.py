"""Figs. 15, 16 — index size and space efficiency.

Paper shape: for adaptive-length methods the DBCH-tree packs leaves fuller
(about 4 entries/leaf vs about 2 for the R-tree), needs roughly a quarter of
the internal nodes, fewer total nodes and lower height; equal-length methods
show only minor differences between the two indexes.
"""

import pytest

from repro.bench import summarise_tree_shape
from repro.index import SeriesDatabase
from repro.reduction import SAPLAReducer

from conftest import publish_table

ADAPTIVE = ("SAPLA", "APLA", "APCA")


def test_fig15_16_tree_shape(benchmark, config, index_grid, bench_report):
    with bench_report("fig15_16_tree_shape"):
        rows = summarise_tree_shape(index_grid)
    publish_table("fig15_16_tree_shape", "Figs 15/16 — node counts & height", rows)
    by = {(r["method"], r["index"]): r for r in rows}

    for method in config.methods:
        for index_kind in ("rtree", "dbch"):
            row = by[(method, index_kind)]
            assert row["total_nodes"] == pytest.approx(
                row["internal_nodes"] + row["leaf_nodes"]
            )
            assert row["height"] >= 1

    # adaptive methods: DBCH-tree no larger than the R-tree on average
    adaptive_dbch = sum(by[(m, "dbch")]["total_nodes"] for m in ADAPTIVE)
    adaptive_rtree = sum(by[(m, "rtree")]["total_nodes"] for m in ADAPTIVE)
    assert adaptive_dbch <= adaptive_rtree * 1.1
    # ... and heights do not exceed the R-tree's
    for method in ADAPTIVE:
        assert by[(method, "dbch")]["height"] <= by[(method, "rtree")]["height"] + 1

    dataset = next(config.datasets())
    db = SeriesDatabase(SAPLAReducer(config.coefficients[0]), index="dbch")
    db.ingest(dataset.data)
    benchmark(db.tree.node_counts)
