"""Extension — retrieval robustness under query perturbations.

Sweeps the perturbation workloads (noise, dropout, warp) across severities
and measures DBCH + SAPLA retrieval accuracy against ground truth on the
*perturbed* query (how well the reduced-space search tracks the true
neighbours as queries degrade).
"""

import numpy as np

from repro.bench.harness import ExperimentConfig
from repro.data import query_workload
from repro.index import SeriesDatabase
from repro.reduction import SAPLAReducer

from conftest import publish_table

KINDS = ("noise", "dropout", "warp")
SEVERITIES = (0.0, 0.2, 0.5)


def test_robustness_under_perturbations(benchmark, config, bench_report):
    cfg = ExperimentConfig(
        dataset_names=("Adiac",),
        length=min(config.length, 256),
        n_series=min(config.n_series, 24),
        n_queries=3,
    )
    dataset = next(cfg.datasets())
    db = SeriesDatabase(SAPLAReducer(12), index="dbch")
    db.ingest(dataset.data)

    rows = []
    with bench_report("robustness", dataset=dataset.name, rows=rows):
        for kind in KINDS:
            for severity in SEVERITIES:
                queries = query_workload(dataset.queries, kind, severity, seed=3)
                accs, prunes = [], []
                for query in queries:
                    truth = db.ground_truth(query, 4)
                    result = db.knn(query, 4)
                    accs.append(result.accuracy_against(truth))
                    prunes.append(result.pruning_power)
                rows.append(
                    {
                        "perturbation": kind,
                        "severity": severity,
                        "accuracy": float(np.mean(accs)),
                        "pruning_power": float(np.mean(prunes)),
                    }
                )
    publish_table("robustness", "Extension — retrieval under perturbed queries", rows)

    by = {(r["perturbation"], r["severity"]): r for r in rows}
    # the clean workload is never worse than the most severe one
    for kind in KINDS:
        assert by[(kind, 0.0)]["accuracy"] >= by[(kind, 0.5)]["accuracy"] - 0.25
    for row in rows:
        assert 0.0 <= row["accuracy"] <= 1.0
        assert 0.0 <= row["pruning_power"] <= 1.0

    benchmark(db.knn, dataset.queries[0], 4)
