"""Extension — measuring the overlap problem itself (paper Sec. 5.2).

The paper *argues* that APCA-style MBRs of homogeneous adaptive-length
representations overlap; this bench measures it: the fraction of
overlapping sibling pairs in the R-tree, per method, on one homogeneous
dataset.  Adaptive methods (whose right endpoints differ per series) should
overlap at least as much as equal-length methods (whose endpoint dimensions
are constant), and the DBCH-tree's hull overlap should stay moderate.
"""

import numpy as np

from repro.bench.harness import ExperimentConfig
from repro.index import SeriesDatabase, dbch_overlap, leaf_fill, rtree_overlap
from repro.reduction import REDUCERS

from conftest import publish_table

METHODS = ("SAPLA", "APLA", "APCA", "PLA", "PAA")


def test_overlap_diagnosis(benchmark, config, bench_report):
    cfg = ExperimentConfig(
        dataset_names=("ECG200",),
        length=min(config.length, 256),
        n_series=min(config.n_series, 24),
        n_queries=1,
    )
    dataset = next(cfg.datasets())
    rows = []
    with bench_report("overlap_diagnosis", dataset=dataset.name, rows=rows):
        for method in METHODS:
            reducer = REDUCERS[method](12)
            reps = [reducer.transform(s) for s in dataset.data]
            db_r = SeriesDatabase(reducer, index="rtree")
            db_r.ingest(dataset.data, representations=reps)
            db_d = SeriesDatabase(reducer, index="dbch")
            db_d.ingest(dataset.data, representations=reps)
            rows.append(
                {
                    "method": method,
                    "rtree_overlap": rtree_overlap(db_r.tree),
                    "dbch_overlap": dbch_overlap(db_d.tree),
                    "rtree_leaf_fill": leaf_fill(db_r.tree),
                    "dbch_leaf_fill": leaf_fill(db_d.tree),
                }
            )
    publish_table("overlap_diagnosis", "Extension — sibling overlap per method", rows)

    by = {r["method"]: r for r in rows}
    # every overlap is a valid fraction
    for row in rows:
        assert 0.0 <= row["rtree_overlap"] <= 1.0
        assert 0.0 <= row["dbch_overlap"] <= 1.0
    # homogeneous adaptive representations overlap in the R-tree at least as
    # much as the most box-friendly equal-length method
    adaptive = np.mean([by[m]["rtree_overlap"] for m in ("SAPLA", "APLA", "APCA")])
    equal = min(by[m]["rtree_overlap"] for m in ("PLA", "PAA"))
    assert adaptive >= equal - 0.05

    reducer = REDUCERS["SAPLA"](12)
    db = SeriesDatabase(reducer, index="rtree")
    db.ingest(dataset.data)
    benchmark(rtree_overlap, db.tree)
