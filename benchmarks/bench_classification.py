"""Extension — k-NN classification (the paper's motivating workload).

1-NN classification over labeled synthetic datasets, comparing methods and
metrics: the Euclidean/GEMINI path through the DBCH-tree (the paper's
stack) and the UCR DTW + LB_Keogh path.
"""

import numpy as np

from repro.apps import KNNClassifier
from repro.data import load_labeled
from repro.reduction import APCA, PAA, SAPLAReducer

from conftest import publish_table

DATASETS = ("SwedishLeaf", "GunPoint")


def test_classification_across_methods(benchmark, config, bench_report):
    rows = []
    with bench_report("classification", rows=rows):
        for name in DATASETS:
            dataset = load_labeled(
                name, n_classes=3, n_per_class=10, n_queries_per_class=3,
                length=min(config.length, 256),
            )
            for reducer_cls in (SAPLAReducer, APCA, PAA):
                report = KNNClassifier(reducer_cls(12), k=1, index="dbch").evaluate(dataset)
                rows.append(
                    {
                        "dataset": name,
                        "method": reducer_cls.name,
                        "metric": "euclidean",
                        "accuracy": report.accuracy,
                        "pruning_power": report.mean_pruning_power,
                    }
                )
            dtw_report = KNNClassifier(PAA(12), k=1, metric="dtw", band=8).evaluate(dataset)
            rows.append(
                {
                    "dataset": name,
                    "method": "raw",
                    "metric": "dtw+lb_keogh",
                    "accuracy": dtw_report.accuracy,
                    "pruning_power": dtw_report.mean_pruning_power,
                }
            )
    publish_table("classification", "Extension — 1-NN classification", rows)

    for row in rows:
        # synthetic classes are separable: every path must classify well
        assert row["accuracy"] >= 0.7, row
        assert 0.0 < row["pruning_power"] <= 1.0

    dataset = load_labeled(
        "SwedishLeaf", n_classes=2, n_per_class=8, n_queries_per_class=1,
        length=min(config.length, 256),
    )
    clf = KNNClassifier(SAPLAReducer(12), k=1).fit(dataset.data, dataset.labels)
    benchmark(clf.predict_one, dataset.queries[0])
