"""Micro-benchmark: batched reduction kernels vs the per-row scalar path.

Times ``reducer.transform_batch(matrix)`` against ``[reducer.transform(row)
for row in matrix]`` for every registered reducer, asserts the two produce
bit-identical representations (the ``transform_batch`` contract), and
writes a JSON report with per-reducer timings and speedups.

``--report`` defaults to ``benchmarks/results/reduction_batch.report.json``
(the committed artifact ``make verify-reduction`` regenerates); sizes are
tunable with ``--rows``/``--length``/``--budget``/``--repeats``.  Run from
the repo root:

    PYTHONPATH=src python benchmarks/bench_reduction_batch.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.reduction import REDUCERS  # noqa: E402

DEFAULT_REPORT = ROOT / "benchmarks" / "results" / "reduction_batch.report.json"


def _rep_key(rep):
    """Bit-exact key (mirrors tests/reduction/test_transform_batch.py)."""
    segments = getattr(rep, "segments", None)
    if segments is not None:
        return tuple(
            (s.start, s.end, np.float64(s.a).tobytes(), np.float64(s.b).tobytes())
            for s in segments
        )
    coefficients = getattr(rep, "coefficients", None)
    if coefficients is not None:
        return np.asarray(coefficients, dtype=float).tobytes()
    symbols = getattr(rep, "symbols", None)
    if symbols is not None:
        return tuple(symbols)
    raise TypeError(f"no bit-exact key for {type(rep).__name__}")


def _best_of(repeats: int, fn) -> float:
    """Best wall time of ``repeats`` runs, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best * 1e3


def bench_reducer(name: str, matrix: np.ndarray, budget: int, repeats: int) -> dict:
    reducer = REDUCERS[name](budget)
    scalar_reps = [reducer.transform(row) for row in matrix]
    batch_reps = reducer.transform_batch(matrix)
    identical = all(
        _rep_key(a) == _rep_key(b) for a, b in zip(scalar_reps, batch_reps)
    )
    if not identical:
        raise AssertionError(f"{name}: transform_batch diverged from transform")
    scalar_ms = _best_of(repeats, lambda: [reducer.transform(row) for row in matrix])
    batch_ms = _best_of(repeats, lambda: reducer.transform_batch(matrix))
    return {
        "scalar_ms": round(scalar_ms, 3),
        "batch_ms": round(batch_ms, 3),
        "speedup": round(scalar_ms / batch_ms, 2) if batch_ms else None,
        "bit_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=40)
    parser.add_argument("--length", type=int, default=256)
    parser.add_argument("--budget", type=int, default=12)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--report", type=pathlib.Path, default=DEFAULT_REPORT)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    matrix = np.cumsum(rng.normal(size=(args.rows, args.length)), axis=1)

    results = {}
    for name in sorted(REDUCERS):
        # APLA's O(n^2) error matrix makes full-length rows impractical;
        # bench it on a shorter prefix, as the paper's figures do
        bench_matrix = matrix[:, :64] if name == "APLA" else matrix
        results[name] = bench_reducer(name, bench_matrix, args.budget, args.repeats)
        results[name]["length"] = bench_matrix.shape[1]
        print(
            f"{name:7s} n={bench_matrix.shape[1]:4d} "
            f"scalar {results[name]['scalar_ms']:9.3f} ms  "
            f"batch {results[name]['batch_ms']:9.3f} ms  "
            f"x{results[name]['speedup']}"
        )

    report = {
        "meta": {
            "rows": args.rows,
            "length": args.length,
            "budget": args.budget,
            "repeats": args.repeats,
        },
        "reducers": results,
    }
    args.report.parent.mkdir(parents=True, exist_ok=True)
    args.report.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {args.report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
