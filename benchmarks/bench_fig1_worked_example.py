"""Fig. 1 / Figs. 5, 6, 8 — the paper's worked 20-point example.

Paper values (M = 12): SAPLA reaches max deviation 9.27273 with N = 4
(10.6061 after split & merge only); APCA 18.4167 and PLA 19.3999 with N = 6.
Our exact O(1) refits do strictly better (SAPLA 5.07); the orderings the
figure illustrates — adaptive linear methods beat the sum-of-deviations of
equal-length and constant methods at the same coefficient budget — hold.
"""

from repro.bench import run_worked_example
from repro.bench.experiments import WORKED_SERIES, make_reducer

from conftest import publish_table


def test_fig1_worked_example(benchmark, bench_report):
    with bench_report("fig1_worked_example"):
        rows = run_worked_example()
    publish_table("fig1_worked_example", "Fig 1 — worked example (M=12)", rows)
    by_method = {row["method"]: row for row in rows}

    # SAPLA must at least match the paper's reported quality
    assert by_method["SAPLA"]["max_deviation"] <= 9.27273 + 1e-6
    assert by_method["SAPLA"]["N"] == 4
    assert by_method["APLA"]["N"] == 4
    # APLA's objective (sum of segment deviations) is optimal at N = 4
    assert (
        by_method["APLA"]["sum_segment_deviation"]
        <= by_method["SAPLA"]["sum_segment_deviation"] + 1e-9
    )
    # the adaptive linear methods beat PLA's sum of deviations (Fig. 1 story)
    assert by_method["SAPLA"]["sum_segment_deviation"] < by_method["PLA"]["sum_segment_deviation"]

    benchmark(make_reducer("SAPLA", 12).transform, WORKED_SERIES)
