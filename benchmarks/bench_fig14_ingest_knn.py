"""Fig. 14 — data ingest time (14a) and k-NN CPU time (14b, + linear scan).

Paper shape: APLA needs by far the most ingest time (reduction dominates);
the DBCH-tree costs more to build than the R-tree (distance-based geometry);
SAPLA/APLA spend a little more k-NN time in the DBCH-tree because their
tight Dist_PAR bounds are costlier per candidate.
"""

from repro.bench import summarise_ingest_knn
from repro.index import SeriesDatabase
from repro.reduction import SAPLAReducer

from conftest import publish_table


def test_fig14_ingest_and_knn_time(benchmark, config, index_grid, bench_report):
    rows = summarise_ingest_knn(index_grid)
    publish_table("fig14_ingest_knn", "Fig 14 — ingest & k-NN CPU time", rows)
    by = {(r["method"], r["index"]): r for r in rows}

    # 14a: APLA has the largest ingest time on both indexes
    for index_kind in ("rtree", "dbch"):
        ingests = {
            method: by[(method, index_kind)]["ingest_time_s"]
            for method in config.methods
        }
        assert ingests["APLA"] == max(ingests.values())
        assert ingests["SAPLA"] < ingests["APLA"]
    # the DBCH-tree needs more build time than the R-tree (paper Sec. 7)
    dbch_total = sum(by[(m, "dbch")]["ingest_time_s"] for m in config.methods)
    rtree_total = sum(by[(m, "rtree")]["ingest_time_s"] for m in config.methods)
    assert dbch_total >= rtree_total
    # the linear scan row exists for Fig. 14b's last bar
    assert ("LinearScan", "none") in by

    # machine-readable sibling of the table: one instrumented ingest+query
    # pass (the .txt above stays byte-identical; this adds a .report.json)
    dataset = next(config.datasets())
    with bench_report(
        "fig14_ingest_knn",
        dataset=dataset.name,
        method="SAPLA",
        index="dbch",
        k=config.ks[0],
        coefficients=config.coefficients[0],
    ):
        instrumented = SeriesDatabase(
            SAPLAReducer(config.coefficients[0]), index="dbch"
        )
        instrumented.ingest(dataset.data)
        for query in dataset.queries:
            instrumented.knn(query, config.ks[0])

    db = SeriesDatabase(SAPLAReducer(config.coefficients[0]), index="dbch")
    benchmark(db.ingest, dataset.data)
