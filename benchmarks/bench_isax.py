"""Extension — native iSAX tree vs R-tree/DBCH for symbolic retrieval.

The paper indexes SAX words through the generic R-tree; the iSAX lineage
(Camerra et al., cited as [3]) gives symbols their own index.  This bench
compares exactness and verification counts: iSAX's bounds are all true
lower bounds, so its k-NN is exact, while the SAX-over-R-tree/DBCH paths
inherit the trees' heuristic navigation.
"""

import numpy as np

from repro.bench.harness import ExperimentConfig
from repro.data import z_normalize
from repro.index import ISAXIndex, SeriesDatabase
from repro.reduction import SAX

from conftest import publish_table


def _run_isax_comparison(cfg, rows):
    for dataset in cfg.datasets():
        data = np.stack([z_normalize(row) for row in dataset.data])
        queries = np.stack([z_normalize(row) for row in dataset.queries])

        isax = ISAXIndex(n_segments=12, leaf_capacity=5)
        isax.ingest(data)
        databases = {}
        for kind in ("rtree", "dbch"):
            db = SeriesDatabase(SAX(12), index=kind)
            db.ingest(data)
            databases[kind] = db

        for structure in ("isax", "rtree", "dbch"):
            accs, prunes = [], []
            for query in queries:
                if structure == "isax":
                    from repro.index import linear_scan

                    truth = linear_scan(data, query, 4)
                    result = isax.knn(query, 4)
                else:
                    db = databases[structure]
                    truth = db.ground_truth(query, 4)
                    result = db.knn(query, 4)
                accs.append(result.accuracy_against(truth))
                prunes.append(result.pruning_power)
            rows.append(
                {
                    "dataset": dataset.name,
                    "structure": structure,
                    "accuracy": float(np.mean(accs)),
                    "pruning_power": float(np.mean(prunes)),
                }
            )


def test_isax_vs_tree_indexes(benchmark, config, bench_report):
    cfg = ExperimentConfig(
        dataset_names=("Adiac", "ECG200"),
        length=min(config.length, 256),
        n_series=min(config.n_series, 24),
        n_queries=3,
    )
    rows = []
    with bench_report("isax_comparison", rows=rows):
        _run_isax_comparison(cfg, rows)
    publish_table("isax_comparison", "Extension — iSAX vs R-tree/DBCH over SAX", rows)

    # iSAX k-NN is exact by construction
    for row in rows:
        if row["structure"] == "isax":
            assert row["accuracy"] == 1.0
        assert 0.0 <= row["pruning_power"] <= 1.0

    data = np.stack(
        [z_normalize(r) for r in next(cfg.datasets()).data]
    )
    index = ISAXIndex(n_segments=12, leaf_capacity=5)
    index.ingest(data)
    benchmark(index.knn, data[0], 4)
