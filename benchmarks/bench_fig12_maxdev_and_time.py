"""Fig. 12 — max deviation (12a) and dimensionality reduction time (12b).

Paper shape: the adaptive-length methods (SAPLA, APLA, APCA) achieve better
max deviation than the equal-length methods at the same coefficient budget;
APLA has the best deviation and by far the worst reduction time; SAPLA's
deviation is close to APLA's at a small fraction of its time.
"""

import numpy as np

from repro.bench import run_maxdev_and_time
from repro.bench.experiments import make_reducer

from conftest import publish_table


def test_fig12_maxdev_and_reduction_time(benchmark, config, bench_report):
    with bench_report("fig12_maxdev_and_time"):
        rows = run_maxdev_and_time(config)
    publish_table(
        "fig12_maxdev_and_time", "Fig 12 — max deviation & reduction time", rows
    )
    for m in config.coefficients:
        at_m = {r["method"]: r for r in rows if r["M"] == m}

        # 12b: APLA is the slowest reducer; the O(n) family the fastest tier
        times = {k: v["reduction_time_s"] for k, v in at_m.items()}
        assert times["APLA"] == max(times.values())
        assert times["SAPLA"] < times["APLA"]
        fastest = min(times, key=times.get)
        assert fastest in ("PLA", "PAA", "PAALM", "SAX")

        # 12a: the adaptive family is competitive with the equal-length one
        adaptive = min(at_m[name]["max_deviation"] for name in ("SAPLA", "APLA", "APCA"))
        equal = min(at_m[name]["max_deviation"] for name in ("PLA", "PAA", "PAALM"))
        assert adaptive <= equal * 1.25
        # SAPLA sacrifices little vs APLA (the paper's "minor loss")
        assert at_m["SAPLA"]["max_deviation"] <= at_m["APLA"]["max_deviation"] * 3 + 0.5

    series = np.random.default_rng(2).normal(size=config.length).cumsum()
    benchmark(make_reducer("SAPLA", config.coefficients[0]).transform, series)
