"""Extension — batched vs sequential k-NN throughput (repro.engine).

The engine answers a batch of queries with vectorised candidate
verification (one NumPy matrix operation per round) and, for aligned
methods, one stacked bound evaluation per query instead of a Python loop
over every entry.  This bench times the same query set through the classic
sequential loop (``ExecutionMode.SEQUENTIAL``) and through the batched path,
checks the answers are byte-identical, and records the throughput ratio —
the acceptance gate is >= 3x at batch >= 64 on the filtered-scan
configuration.

Scale knobs: ``REPRO_LENGTH`` / ``REPRO_SERIES`` / ``REPRO_QUERIES``
(defaults 128 / 512 / 64; the Makefile's ``verify-engine`` smoke run
shrinks them).
"""

import os
import time

import numpy as np

from repro import obs
from repro.engine import ExecutionMode, QueryOptions
from repro.index import SeriesDatabase
from repro.kinds import IndexKind
from repro.reduction import PAA, SAPLAReducer

from conftest import publish_report, publish_table


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _time_mode(db, queries, options):
    started = time.perf_counter()
    batch = db.knn_batch(queries, options)
    return batch, time.perf_counter() - started


def test_batched_vs_sequential_throughput(benchmark):
    length = _env_int("REPRO_LENGTH", 128)
    n_series = _env_int("REPRO_SERIES", 512)
    n_queries = _env_int("REPRO_QUERIES", 64)
    k = 8
    rng = np.random.default_rng(7)
    data = rng.normal(size=(n_series, length)).cumsum(axis=1)
    picks = rng.integers(0, n_series, size=n_queries)
    queries = data[picks] + rng.normal(scale=0.05, size=(n_queries, length))

    # the headline configuration (aligned bounds + filtered scan) plus a
    # tree configuration, smaller because SAPLA reduction dominates ingest
    tree_count = min(n_series, 128)
    tree_queries = queries[: min(n_queries, 32)]
    configs = (
        ("PAA", "scan", PAA(12), None, data, queries),
        ("SAPLA", "dbch", SAPLAReducer(12), IndexKind.DBCH, data[:tree_count], tree_queries),
    )
    rows = []
    with obs.capture() as session:
        with obs.span("bench.run"):
            for method, index_label, reducer, index, rows_data, rows_queries in configs:
                db = SeriesDatabase(reducer, index=index)
                db.ingest(rows_data, bulk=index is not None)
                sequential, t_seq = _time_mode(
                    db, rows_queries, QueryOptions(k=k, mode=ExecutionMode.SEQUENTIAL)
                )
                batched, t_bat = _time_mode(db, rows_queries, QueryOptions(k=k))
                for a, b in zip(sequential.results, batched.results):
                    assert a.ids == b.ids
                    assert a.distances == b.distances
                rows.append(
                    {
                        "method": method,
                        "index": index_label,
                        "batch": len(rows_queries),
                        "sequential_qps": len(rows_queries) / t_seq,
                        "batched_qps": len(rows_queries) / t_bat,
                        "speedup": t_seq / t_bat,
                    }
                )
    publish_table(
        "batch_knn",
        f"Extension — batched vs sequential k-NN (k={k}, {n_series}x{length})",
        rows,
    )
    publish_report(
        "batch_knn",
        session.report(
            meta={
                "bench": "batch_knn",
                "length": length,
                "n_series": n_series,
                "n_queries": n_queries,
                "k": k,
                "rows": rows,
            }
        ),
    )

    scan_row = rows[0]
    if scan_row["batch"] >= 64 and n_series >= 256:
        assert scan_row["speedup"] >= 3.0, scan_row

    db = SeriesDatabase(PAA(12), index=None)
    db.ingest(data)
    benchmark(db.knn_batch, queries, QueryOptions(k=k))
