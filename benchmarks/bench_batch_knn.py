"""Extension — batched vs sequential k-NN throughput (repro.engine).

The engine answers a batch of queries with vectorised candidate
verification (one NumPy matrix operation per round) and, for aligned
methods, one stacked bound evaluation per query instead of a Python loop
over every entry.  The measurement core lives in
:func:`repro.experiments.workloads.run_batch_knn` — the same code the
experiment runner executes — so this bench is one hand-built trial per
configuration: it checks the batched answers are identical to the
sequential loop's, records the throughput ratio (acceptance gate >= 3x at
batch >= 64 on the filtered-scan configuration), and publishes each trial
through the experiment service.

Scale knobs: ``REPRO_LENGTH`` / ``REPRO_SERIES`` / ``REPRO_QUERIES``
(defaults 128 / 512 / 64; the Makefile's ``verify-engine`` smoke run
shrinks them).
"""

import os

from repro.engine import QueryOptions
from repro.experiments import (
    EngineSpec,
    ReducerSpec,
    ScaleSpec,
    TrialSpec,
    make_trial_data,
    run_trial,
)
from repro.index import SeriesDatabase
from repro.kinds import IndexKind
from repro.reduction import PAA

from conftest import publish_table


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def test_batched_vs_sequential_throughput(benchmark, publish_trial):
    length = _env_int("REPRO_LENGTH", 128)
    n_series = _env_int("REPRO_SERIES", 512)
    n_queries = _env_int("REPRO_QUERIES", 64)
    k = 8
    engine = EngineSpec(k=k)

    # the headline configuration (aligned bounds + filtered scan) plus a
    # tree configuration, smaller because SAPLA reduction dominates ingest
    configs = (
        (
            "batch_knn",
            ReducerSpec("PAA", 12),
            IndexKind.NONE,
            ScaleSpec("scan", length, n_series, n_queries),
        ),
        (
            "batch_knn_tree",
            ReducerSpec("SAPLA", 12),
            IndexKind.DBCH,
            ScaleSpec("tree", length, min(n_series, 128), min(n_queries, 32)),
        ),
    )
    rows = []
    scan_trial = None
    for position, (name, reducer, index_kind, scale) in enumerate(configs):
        trial = TrialSpec(
            index=position,
            workload="batch_knn",
            scale=scale,
            reducer=reducer,
            index_kind=index_kind,
            engine=engine,
            repeat=0,
            seed=7,
        )
        scan_trial = scan_trial or trial
        derived, report, elapsed = run_trial(trial)
        # batched answers must match the sequential loop byte-for-byte
        assert derived["results_identical"] == 1.0, trial.cell_key
        rows.append(
            {
                "method": reducer.method,
                "index": str(index_kind),
                "batch": scale.n_queries,
                "sequential_qps": derived["sequential_qps"],
                "batched_qps": derived["batched_qps"],
                "speedup": derived["speedup"],
                "latency_p99_ms": derived["latency_p99_ms"],
            }
        )
        publish_trial(name, trial, report, derived, elapsed)
    publish_table(
        "batch_knn",
        f"Extension — batched vs sequential k-NN (k={k}, {n_series}x{length})",
        rows,
    )

    scan_row = rows[0]
    if scan_row["batch"] >= 64 and n_series >= 256:
        assert scan_row["speedup"] >= 3.0, scan_row

    data, queries = make_trial_data(scan_trial)
    db = SeriesDatabase(PAA(12), index=None)
    db.ingest(data)
    benchmark(db.knn_batch, queries, QueryOptions(k=k))
