"""Micro-bench — StreamingSAPLA bulk ``extend`` vs point-at-a-time ``append``.

PR 9 added an amortised merge-selection cache (adjacent-pair Reconstruction
Areas and merged fits are kept in lockstep with the closed list, so each
merge recomputes two neighbours instead of re-deriving every pair) and a
bulk ``extend`` path that validates the whole chunk once.  This bench proves
the bulk path is faster than the historical per-point loop *and* that both
produce bit-identical segmentations.
"""

import time

import numpy as np

from repro.core import StreamingSAPLA

from conftest import publish_table


def _segments(stream: StreamingSAPLA):
    return [(s.start, s.end, s.a, s.b) for s in stream.representation.segments]


def _per_point_baseline(series, budget: int) -> "tuple[float, StreamingSAPLA]":
    """The historical ingestion loop: one validated ``append`` per point."""
    stream = StreamingSAPLA(max_segments=budget)
    started = time.process_time()
    for value in series:
        stream.append(value)
    return time.process_time() - started, stream


def _bulk(series, budget: int) -> "tuple[float, StreamingSAPLA]":
    stream = StreamingSAPLA(max_segments=budget)
    started = time.process_time()
    stream.extend(series)
    return time.process_time() - started, stream


def test_bulk_extend_speed_and_equivalence(benchmark, bench_report):
    rng = np.random.default_rng(11)
    rows = []
    with bench_report("streaming_extend", rows=rows):
        for n, budget in ((2000, 8), (8000, 8), (8000, 32)):
            series = rng.normal(size=n).cumsum()
            # warm both paths once so the comparison excludes import costs
            _bulk(series[:256], budget)
            t_point, via_append = _per_point_baseline(series, budget)
            t_bulk, via_extend = _bulk(series, budget)
            assert _segments(via_append) == _segments(via_extend)
            rows.append(
                {
                    "n": n,
                    "budget": budget,
                    "append_pts_per_s": n / max(t_point, 1e-9),
                    "extend_pts_per_s": n / max(t_bulk, 1e-9),
                    "speedup": max(t_point, 1e-9) / max(t_bulk, 1e-9),
                }
            )
    publish_table(
        "streaming_extend",
        "Extension — bulk StreamingSAPLA.extend vs per-point append",
        rows,
    )
    # the bulk path must not lose to the per-point loop (allowing scheduler
    # noise on the smallest chunk); the medians in the committed report show
    # the real margin
    assert max(row["speedup"] for row in rows) > 1.0

    chunk = rng.normal(size=4000).cumsum()

    def feed():
        stream = StreamingSAPLA(max_segments=16)
        stream.extend(chunk)
        return stream.n_segments

    benchmark(feed)
