"""Fig. 10 — the lower-bounding distance comparison.

The paper's example: two series reduced to two adaptive segments each give
``Dist_LB = 11 < Dist_PAR = 14 < Dist = 17 < Dist_AE = 20`` — Dist_PAR is a
tighter approximation than Dist_LB while staying below the true distance,
and Dist_AE overshoots.  This bench reproduces the ordering on a population
of random-walk pairs and reports the mean tightness ratios.
"""

import numpy as np

from repro.distance import dist_ae, dist_lb, dist_par, euclidean
from repro.reduction import SAPLAReducer

from conftest import publish_table


def test_fig10_distance_ordering(benchmark, bench_report):
    reducer = SAPLAReducer(12)
    ratios = {"Dist_LB": [], "Dist_PAR": [], "Dist_AE": []}
    par_ge_lb = 0
    lb_violations = 0
    trials = 40
    with bench_report("fig10_distance_ordering", trials=trials):
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            q = rng.normal(size=128).cumsum()
            c = rng.normal(size=128).cumsum()
            rep_q, rep_c = reducer.transform(q), reducer.transform(c)
            true = euclidean(q, c)
            lb = dist_lb(q, rep_c)
            par = dist_par(rep_q, rep_c)
            ae = dist_ae(q, rep_c)
            ratios["Dist_LB"].append(lb / true)
            ratios["Dist_PAR"].append(par / true)
            ratios["Dist_AE"].append(ae / true)
            par_ge_lb += par >= lb
            lb_violations += lb > true + 1e-9

    rows = [
        {"measure": name, "mean_ratio_to_dist": float(np.mean(vals))}
        for name, vals in ratios.items()
    ]
    publish_table("fig10_distance_ordering", "Fig 10 — distance tightness ratios", rows)

    by = {r["measure"]: r["mean_ratio_to_dist"] for r in rows}
    # the paper's ordering, on average: LB <= PAR <= 1 (Dist) and AE ~ 1
    assert by["Dist_LB"] <= by["Dist_PAR"] + 1e-9
    assert by["Dist_PAR"] <= 1.0 + 1e-9
    assert by["Dist_AE"] >= by["Dist_PAR"]
    # Dist_LB never breaks the lower-bounding lemma
    assert lb_violations == 0
    # Dist_PAR dominates Dist_LB on nearly every pair (tightness, Sec. A.6)
    assert par_ge_lb >= 0.9 * trials

    rng = np.random.default_rng(99)
    q = rng.normal(size=128).cumsum()
    rep_c = reducer.transform(rng.normal(size=128).cumsum())
    benchmark(dist_lb, q, rep_c)
