"""Parameter sweep — the paper's grid M in {12, 18, 24}, K in {4..64}.

The full figures average over this grid; this bench sweeps it on a compact
slice and checks the monotone trends the paper relies on: more coefficients
tighten the bounds (pruning power does not degrade), and larger K forces
more verification (pruning power grows with K).
"""

import numpy as np

from repro.bench import run_index_grid
from repro.bench.harness import ExperimentConfig
from repro.distance import dist_par
from repro.reduction import SAPLAReducer

from conftest import publish_table


def _mean(records, key, **match):
    values = [
        r[key]
        for r in records
        if r["kind"] == "knn"
        and r["method"] != "LinearScan"
        and all(r.get(field) == want for field, want in match.items())
    ]
    return float(np.mean(values))


def test_sweep_m_and_k(benchmark, config, bench_report):
    cfg = ExperimentConfig(
        dataset_names=("Adiac", "Car"),
        length=min(config.length, 256),
        n_series=min(config.n_series, 20),
        n_queries=2,
        coefficients=(12, 24),
        ks=(4, 16),
        methods=("SAPLA", "APCA", "PAA"),
    )
    with bench_report("sweep_m_k"):
        records = run_index_grid(cfg)

    rows = []
    for m in cfg.coefficients:
        for k in cfg.ks:
            rows.append(
                {
                    "M": m,
                    "K": k,
                    "pruning_power": _mean(records, "pruning_power", M=m, k=k),
                    "accuracy": _mean(records, "accuracy", M=m, k=k),
                }
            )
    publish_table("sweep_m_k", "Sweep — pruning/accuracy over M and K", rows)

    by = {(r["M"], r["K"]): r for r in rows}
    # larger K must verify at least as much (kth-best threshold loosens)
    for m in cfg.coefficients:
        assert by[(m, 16)]["pruning_power"] >= by[(m, 4)]["pruning_power"] - 0.05
    # more coefficients must not hurt pruning at fixed K
    for k in cfg.ks:
        assert by[(24, k)]["pruning_power"] <= by[(12, k)]["pruning_power"] + 0.1
    # accuracy stays a valid fraction everywhere
    assert all(0.0 <= r["accuracy"] <= 1.0 for r in rows)

    rng = np.random.default_rng(11)
    reducer = SAPLAReducer(24)
    rep_a = reducer.transform(rng.normal(size=cfg.length).cumsum())
    rep_b = reducer.transform(rng.normal(size=cfg.length).cumsum())
    benchmark(dist_par, rep_a, rep_b)


def test_sweep_bulk_vs_incremental(benchmark, config, bench_report):
    """Extension bench: packed bulk loading vs incremental insertion."""
    import time

    from repro.index import SeriesDatabase

    archive_cfg = ExperimentConfig(
        dataset_names=("Adiac",),
        length=min(config.length, 256),
        n_series=min(config.n_series, 24),
        n_queries=2,
    )
    dataset = next(archive_cfg.datasets())
    rows = []
    with bench_report("sweep_bulk", rows=rows):
        for index_kind in ("rtree", "dbch"):
            for bulk in (False, True):
                db = SeriesDatabase(SAPLAReducer(12), index=index_kind)
                reps = [db.reducer.transform(s) for s in dataset.data]
                started = time.process_time()
                db.ingest(dataset.data, representations=reps, bulk=bulk)
                build = time.process_time() - started
                counts = db.tree.node_counts()
                truth = db.ground_truth(dataset.queries[0], 4)
                result = db.knn(dataset.queries[0], 4)
                rows.append(
                    {
                        "index": index_kind,
                        "mode": "bulk" if bulk else "incremental",
                        "build_time_s": build,
                        "total_nodes": counts["total"],
                        "accuracy": result.accuracy_against(truth),
                    }
                )
    publish_table("sweep_bulk", "Extension — bulk vs incremental loading", rows)

    by = {(r["index"], r["mode"]): r for r in rows}
    for index_kind in ("rtree", "dbch"):
        assert (
            by[(index_kind, "bulk")]["total_nodes"]
            <= by[(index_kind, "incremental")]["total_nodes"]
        )

    db = SeriesDatabase(SAPLAReducer(12), index="rtree")
    reps = [db.reducer.transform(s) for s in dataset.data]
    benchmark(db.ingest, dataset.data, representations=reps, bulk=True)
