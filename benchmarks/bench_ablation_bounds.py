"""Ablation — SAPLA design choices (DESIGN.md).

* paper's O(1) conditional bounds vs exact per-segment deviations as the
  iteration signal: exact steering is slower and buys little quality;
* dropping the endpoint-movement stage: faster but worse deviations;
* increment-area initialization vs uniform seeding.
"""

import numpy as np

from repro.bench import run_bound_ablation
from repro.bench.harness import ExperimentConfig
from repro.core import SAPLA, SeriesStats, split_merge
from repro.core.segment import LinearSegmentation, Segment
from repro.metrics import max_deviation

from conftest import publish_table


def small_config(config):
    return ExperimentConfig(
        dataset_names=tuple(config.dataset_names[:4]),
        length=min(config.length, 256),
        n_series=min(config.n_series, 12),
        n_queries=1,
    )


def test_ablation_bound_modes(benchmark, config, bench_report):
    cfg = small_config(config)
    with bench_report("ablation_bounds"):
        rows = run_bound_ablation(cfg)
    publish_table("ablation_bounds", "Ablation — SAPLA bound modes & stages", rows)
    by = {r["variant"]: r for r in rows}

    # exact steering may win slightly on quality but costs time
    assert by["exact-bounds"]["reduction_time_s"] >= by["paper-bounds"]["reduction_time_s"] * 0.5
    # dropping the endpoint stage must not *improve* quality materially
    assert (
        by["no-endpoint-stage"]["max_deviation"]
        >= by["paper-bounds"]["max_deviation"] * 0.8
    )

    series = np.random.default_rng(3).normal(size=cfg.length).cumsum()
    benchmark(SAPLA(n_segments=4, bound_mode="exact").transform, series)


def _measure_initializations(cfg, n_segments, rows):
    for label in ("increment-area", "uniform-seed"):
        devs = []
        for dataset in cfg.datasets():
            for series in dataset.data:
                stats = SeriesStats(series)
                if label == "increment-area":
                    rep = SAPLA(n_segments=n_segments).transform(series)
                else:
                    n = len(series)
                    bounds = np.linspace(0, n, n_segments + 1).astype(int)
                    seeds = [
                        Segment.fit(stats, int(s), int(e) - 1)
                        for s, e in zip(bounds, bounds[1:])
                    ]
                    segments = split_merge(stats, seeds, n_segments)
                    rep = LinearSegmentation(segments)
                devs.append(max_deviation(series, rep.reconstruct()))
        rows.append({"initialization": label, "max_deviation": float(np.mean(devs))})


def test_ablation_initialization_vs_uniform(benchmark, config, bench_report):
    """Increment-area initialization vs a uniform seeding of the same size."""
    cfg = small_config(config)
    n_segments = 4
    rows = []
    with bench_report("ablation_init", rows=rows):
        _measure_initializations(cfg, n_segments, rows)
    publish_table("ablation_init", "Ablation — initialization strategy", rows)
    by = {r["initialization"]: r["max_deviation"] for r in rows}
    # increment-area seeding should not be materially worse than uniform
    assert by["increment-area"] <= by["uniform-seed"] * 1.5 + 0.1

    series = np.random.default_rng(4).normal(size=cfg.length).cumsum()
    benchmark(SAPLA(n_segments=n_segments).transform, series)
