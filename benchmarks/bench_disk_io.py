"""Extension — pruning power as physical disk I/O.

The paper reports pruning power as a proxy for disk accesses.  With the
paged storage substrate the proxy becomes measurable: this bench runs the
same queries against a disk-backed database and checks that the pages read
track the verification counts — and that a pruned search reads a small
fraction of the pages a full scan touches.
"""

import numpy as np

from repro.bench.harness import ExperimentConfig
from repro.reduction import PAA, SAPLAReducer
from repro.storage import DiskBackedDatabase

from conftest import publish_table


def test_pruning_is_disk_io(benchmark, config, tmp_path_factory, bench_report):
    cfg = ExperimentConfig(
        dataset_names=("Adiac",),
        length=min(config.length, 256),
        n_series=min(config.n_series, 24),
        n_queries=3,
    )
    dataset = next(cfg.datasets())
    tmp = tmp_path_factory.mktemp("paged")
    rows = []
    # capture the run so the .txt table gains a .report.json sibling with
    # the physical-I/O counters (the table itself stays byte-identical)
    with bench_report(
        "disk_io",
        dataset=dataset.name,
        methods=["SAPLA", "PAA"],
        index="dbch",
        page_size=1024,
        cache_pages=4,
    ):
        for reducer_cls in (SAPLAReducer, PAA):
            db = DiskBackedDatabase(
                reducer_cls(12), tmp / f"{reducer_cls.name}.bin", index="dbch",
                page_size=1024, cache_pages=4,
            )
            db.ingest(dataset.data)
            pages_per_series = db.store.pages_per_series()
            full_scan_pages = len(dataset.data) * pages_per_series

            prunes, page_fracs = [], []
            for query in dataset.queries:
                db.reset_io()
                result = db.knn(query, 4)
                prunes.append(result.pruning_power)
                page_fracs.append(db.io_stats.total_accesses / full_scan_pages)
            rows.append(
                {
                    "method": reducer_cls.name,
                    "pruning_power": float(np.mean(prunes)),
                    "page_fraction": float(np.mean(page_fracs)),
                }
            )
    publish_table("disk_io", "Extension — pruning power vs physical page I/O", rows)

    for row in rows:
        # pages read track verifications: same order of magnitude, and a
        # pruned search never reads more than slightly above its share
        assert row["page_fraction"] <= row["pruning_power"] * 1.5 + 0.05
        assert row["page_fraction"] < 1.0

    db = DiskBackedDatabase(SAPLAReducer(12), tmp / "bench.bin", index="dbch")
    db.ingest(dataset.data)
    benchmark(db.knn, dataset.queries[0], 4)
