"""Shared fixtures for the figure/table benchmarks.

Scale knobs (defaults are CI-sized; see DESIGN.md for the full-grid knobs):

    REPRO_LENGTH, REPRO_SERIES, REPRO_QUERIES, REPRO_DATASETS,
    REPRO_COEFFICIENTS, REPRO_KS, REPRO_APLA_MAX_LENGTH

Each bench renders its figure's rows as a table; tables are written to
``benchmarks/results/`` and echoed in the terminal summary.  Benches that
capture the observability layer also drop a machine-readable
``<name>.report.json`` (:class:`repro.obs.RunReport`) next to the table.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import config_from_env, render_table, run_index_grid
from repro.obs import RunReport

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES: "list[str]" = []


def publish_table(name: str, title: str, rows) -> None:
    """Render, persist and queue a results table for the terminal summary."""
    text = render_table(title, rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _TABLES.append(text)


def publish_report(name: str, report: RunReport) -> pathlib.Path:
    """Persist a RunReport next to the bench's table (``<name>.report.json``)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return report.save(RESULTS_DIR / f"{name}.report.json")


def pytest_terminal_summary(terminalreporter):
    for text in _TABLES:
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def config():
    return config_from_env()


@pytest.fixture(scope="session")
def index_grid(config):
    """The Figs. 13-16 record grid, computed once per session."""
    return run_index_grid(config)
