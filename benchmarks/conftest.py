"""Shared fixtures for the figure/table benchmarks.

Scale knobs (defaults are CI-sized; see DESIGN.md for the full-grid knobs):

    REPRO_LENGTH, REPRO_SERIES, REPRO_QUERIES, REPRO_DATASETS,
    REPRO_COEFFICIENTS, REPRO_KS, REPRO_APLA_MAX_LENGTH

Each bench renders its figure's rows as a table; tables are written to
``benchmarks/results/`` and echoed in the terminal summary.  Every bench
also captures the observability layer through the :func:`bench_report`
fixture and drops a machine-readable ``<name>.report.json``
(:class:`repro.obs.RunReport`) next to its table — pass ``--no-report``
to skip the JSON artifacts.

Benches migrated onto the experiment service run their measurement core
through :mod:`repro.experiments.workloads` and publish each trial with the
:func:`publish_trial` fixture; setting ``REPRO_EXPERIMENT_STORE=<path>``
additionally records those trials into that sqlite results store.
"""

from __future__ import annotations

import contextlib
import os
import pathlib

import pytest

from repro import obs
from repro.bench import config_from_env, render_table, run_index_grid
from repro.experiments import record_bench_trial
from repro.obs import RunReport

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES: "list[str]" = []


def pytest_addoption(parser):
    group = parser.getgroup("repro", "repro benchmark artifacts")
    group.addoption(
        "--report",
        dest="emit_reports",
        action="store_true",
        default=True,
        help="write <bench>.report.json observability artifacts (default)",
    )
    group.addoption(
        "--no-report",
        dest="emit_reports",
        action="store_false",
        help="skip the <bench>.report.json observability artifacts",
    )


def publish_table(name: str, title: str, rows) -> None:
    """Render, persist and queue a results table for the terminal summary."""
    text = render_table(title, rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _TABLES.append(text)


def publish_report(name: str, report: RunReport) -> pathlib.Path:
    """Persist a RunReport next to the bench's table (``<name>.report.json``)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return report.save(RESULTS_DIR / f"{name}.report.json")


def pytest_terminal_summary(terminalreporter):
    for text in _TABLES:
        terminalreporter.write_line(text)


@pytest.fixture
def bench_report(request):
    """Capture obs around a bench body and publish its ``.report.json``.

    Usage::

        with bench_report("fig10_distance_ordering", rows=rows) as session:
            ...  # measured work; obs enabled, under span "bench.run"

    Extra keyword arguments land in the report's ``meta``; mutable values
    (e.g. the ``rows`` list the bench appends to) are read at exit, so they
    may be filled inside the block.  ``--no-report`` keeps the capture (the
    bench still runs identically) but skips writing the artifact.
    """

    @contextlib.contextmanager
    def _capture(name: str, **meta):
        with obs.capture() as session:
            with obs.span("bench.run"):
                yield session
        if request.config.getoption("emit_reports"):
            publish_report(name, session.report(meta={"bench": name, **meta}))

    return _capture


@pytest.fixture
def publish_trial(request):
    """Publish one experiment-service trial from a bench.

    Writes the trial's RunReport as ``<name>.report.json`` (unless
    ``--no-report``) and, when ``REPRO_EXPERIMENT_STORE`` names a sqlite
    path, records the trial there via
    :func:`repro.experiments.record_bench_trial`.
    """

    def _publish(name, trial, report, derived, elapsed_s: float = 0.0):
        if request.config.getoption("emit_reports"):
            publish_report(name, report)
        store_path = os.environ.get("REPRO_EXPERIMENT_STORE")
        if store_path:
            record_bench_trial(store_path, name, trial, report, derived, elapsed_s)

    return _publish


@pytest.fixture(scope="session")
def config():
    return config_from_env()


@pytest.fixture(scope="session")
def index_grid(config):
    """The Figs. 13-16 record grid, computed once per session."""
    return run_index_grid(config)
