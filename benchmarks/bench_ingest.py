"""Extension — durable ingest throughput and snapshot-isolated serving.

Measures what the lifecycle subsystem costs and what it guarantees:

* inserts/sec into a saved database under every fsync policy (plus no WAL
  at all) — the durability/throughput trade the
  :class:`repro.lifecycle.DurabilityOptions` knob buys.  The measurement
  core is :func:`repro.experiments.workloads.run_ingest`, the same code
  the experiment runner executes; each policy is one hand-built trial
  published through the experiment service.
* ``knn_batch`` latency while an ingest stream is interleaved between
  batches, asserting snapshot isolation: every batch reports the single
  generation it was served at, and generations advance exactly with the
  inserts that landed between batches.

Scale knobs: ``REPRO_LENGTH`` / ``REPRO_SERIES`` (defaults 128 / 512).
"""

import os

import numpy as np

from repro.engine import QueryOptions
from repro.experiments import EngineSpec, ReducerSpec, ScaleSpec, TrialSpec, run_trial
from repro.index import SeriesDatabase
from repro.io import open_database
from repro.kinds import IndexKind
from repro.lifecycle import DurabilityOptions
from repro.reduction import PAA

from conftest import publish_table


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _saved_database(directory, data):
    db = SeriesDatabase(PAA(12), index=IndexKind.DBCH)
    db.ingest(data)
    db.save(directory)


def test_ingest_fsync_policies_and_snapshot_isolation(
    benchmark, tmp_path, bench_report, publish_trial
):
    length = _env_int("REPRO_LENGTH", 128)
    n_series = _env_int("REPRO_SERIES", 512)
    n_inserts = max(n_series // 2, 64)

    # ---- fsync policy sweep through the experiment-service workload ----
    policies = ("off", "never", "batch", "always")
    rows = []
    for position, fsync in enumerate(policies):
        trial = TrialSpec(
            index=position,
            workload="ingest",
            scale=ScaleSpec("ingest", length, n_series, 1, n_inserts=n_inserts),
            reducer=ReducerSpec("PAA", 12),
            index_kind=IndexKind.DBCH,
            engine=EngineSpec(k=8, fsync=fsync, fsync_batch=64),
            repeat=0,
            seed=11,
        )
        derived, report, elapsed = run_trial(trial)
        rows.append(
            {
                "policy": "wal-off" if fsync == "off" else f"fsync-{fsync}",
                "inserts": n_inserts,
                "inserts_per_s": derived["inserts_per_s"],
                "wal_bytes": derived["wal_bytes"],
                "insert_p99_ms": derived["insert_p99_ms"],
            }
        )
        publish_trial(f"ingest_fsync_{fsync}", trial, report, derived, elapsed)

    by_policy = {r["policy"]: r for r in rows}
    assert by_policy["wal-off"]["wal_bytes"] == 0
    assert by_policy["fsync-always"]["wal_bytes"] > 0

    # ---- knn_batch latency under a concurrent ingest stream ----
    rng = np.random.default_rng(11)
    data = rng.normal(size=(n_series, length)).cumsum(axis=1)
    stream = rng.normal(size=(n_inserts, length)).cumsum(axis=1)
    with bench_report("ingest", length=length, n_series=n_series,
                      n_inserts=n_inserts, rows=rows):
        home = tmp_path / "serving"
        _saved_database(home, data)
        db = open_database(home, durability=DurabilityOptions())
        queries = data[rng.integers(0, n_series, size=16)] + rng.normal(
            scale=0.05, size=(16, length)
        )
        latencies = []
        generations = []
        inserted = 0
        for step, row in enumerate(stream):
            db.insert(row)
            inserted += 1
            if step % 8 == 7:
                batch = db.knn_batch(queries, QueryOptions(k=8))
                latencies.append(batch.elapsed_s)
                generations.append(batch.generation)
                # snapshot isolation: the whole batch was served at one
                # generation, and generations advance 1:1 with inserts
                assert batch.generation == db.generation
                assert all(r.n_total == n_series + inserted for r in batch.results)
        assert generations == sorted(generations)
        deltas = [b - a for a, b in zip(generations, generations[1:])]
        assert all(d == 8 for d in deltas), deltas  # 8 inserts between batches
        rows.append(
            {
                "policy": "serving-under-ingest",
                "inserts": inserted,
                "inserts_per_s": float("nan"),
                "knn_batch_p50_ms": sorted(latencies)[len(latencies) // 2] * 1e3,
            }
        )
    publish_table(
        "ingest",
        f"Extension — durable ingest ({n_inserts} inserts, {n_series}x{length} base)",
        rows,
    )

    home = tmp_path / "timed"
    _saved_database(home, data)
    timed_db = open_database(home, durability=DurabilityOptions())
    stream_iter = iter(np.tile(stream, (50, 1)))
    benchmark(lambda: timed_db.insert(next(stream_iter)))
