"""Extension — compression ratio at matched quality (the paper's ref. [9]).

The paper excludes the user-defined-max-deviation compression method from
its comparison because the two formulations are duals (fixed N, best error
vs fixed error, best N).  Having both lets us close the loop: for a target
deviation, how many coefficients does the greedy error-bounded method spend
vs what SAPLA achieves when given that same budget?
"""

import numpy as np

from repro.bench.harness import ExperimentConfig
from repro.reduction import ErrorBoundedPLA, SAPLAReducer

from conftest import publish_table

BOUNDS = (0.5, 1.0, 2.0)


def test_error_bounded_duality(benchmark, config, bench_report):
    cfg = ExperimentConfig(
        dataset_names=("Adiac", "EOGHorizontalSignal"),
        length=min(config.length, 256),
        n_series=min(config.n_series, 12),
        n_queries=1,
    )
    rows = []
    with bench_report("error_bounded", rows=rows):
        for bound in BOUNDS:
            ratios, sapla_devs, segment_counts = [], [], []
            for dataset in cfg.datasets():
                for series in dataset.data:
                    greedy = ErrorBoundedPLA(bound)
                    rep = greedy.transform(series)
                    ratios.append(rep.n_coefficients / len(series))
                    segment_counts.append(rep.n_segments)
                    sapla = SAPLAReducer(max(3 * rep.n_segments, 3)).transform(series)
                    sapla_devs.append(float(np.abs(series - sapla.reconstruct()).max()))
            rows.append(
                {
                    "bound": bound,
                    "mean_segments": float(np.mean(segment_counts)),
                    "compression_ratio": float(np.mean(ratios)),
                    "sapla_dev_at_same_budget": float(np.mean(sapla_devs)),
                }
            )
    publish_table("error_bounded", "Extension — error-bounded compression duality", rows)

    by = {r["bound"]: r for r in rows}
    # looser bounds compress harder
    assert by[2.0]["compression_ratio"] < by[0.5]["compression_ratio"]
    assert by[2.0]["mean_segments"] < by[0.5]["mean_segments"]
    # SAPLA at the same budget lands in the same quality regime
    for bound in BOUNDS:
        assert by[bound]["sapla_dev_at_same_budget"] <= bound * 3

    series = np.random.default_rng(0).normal(size=cfg.length).cumsum()
    benchmark(ErrorBoundedPLA(1.0).transform, series)
