"""Ablation — DBCH-tree query bound: Dist_PAR vs Dist_LB (DESIGN.md).

The paper argues the DBCH-tree depends on the tightness of its distance
measure; steering candidate filtering with the looser Dist_LB should verify
at least as many raw series (worse pruning power) while keeping accuracy.
"""

import numpy as np

from repro.bench import run_dbch_ablation
from repro.bench.harness import ExperimentConfig
from repro.distance import dist_par
from repro.reduction import SAPLAReducer

from conftest import publish_table


def test_ablation_dbch_query_bound(benchmark, config, bench_report):
    cfg = ExperimentConfig(
        dataset_names=tuple(config.dataset_names[:4]),
        length=min(config.length, 256),
        n_series=min(config.n_series, 16),
        n_queries=2,
        ks=(4,),
    )
    with bench_report("ablation_dbch"):
        rows = run_dbch_ablation(cfg)
    publish_table("ablation_dbch", "Ablation — DBCH query bound", rows)
    by = {r["query_bound"]: r for r in rows}

    assert 0.0 <= by["Dist_PAR"]["pruning_power"] <= 1.0
    assert 0.0 <= by["Dist_LB"]["pruning_power"] <= 1.0
    # the guaranteed bound keeps accuracy high
    assert by["Dist_LB"]["accuracy"] >= 0.6

    reducer = SAPLAReducer(12)
    rng = np.random.default_rng(5)
    rep_a = reducer.transform(rng.normal(size=cfg.length).cumsum())
    rep_b = reducer.transform(rng.normal(size=cfg.length).cumsum())
    benchmark(dist_par, rep_a, rep_b)
