"""Extension — multivariate search with combined per-channel bounds.

Per-channel lower bounds combine into a valid multivariate lower bound, so
the multivariate database stays exact while pruning; this bench confirms
exactness and measures the pruning across channel counts.
"""

import numpy as np

from repro.multivariate import MultivariateDatabase, MultivariateReducer
from repro.reduction import SAPLAReducer

from conftest import publish_table


def collection(count, channels, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, channels, n)).cumsum(axis=2)


def test_multivariate_search(benchmark, config, bench_report):
    n = min(config.length, 128)
    rows = []
    with bench_report("multivariate", rows=rows):
        for channels in (1, 3, 6):
            data = collection(24, channels, n, seed=channels)
            db = MultivariateDatabase(MultivariateReducer(lambda: SAPLAReducer(12)))
            db.ingest(data)
            rng = np.random.default_rng(99)
            accs, prunes = [], []
            for _ in range(3):
                query = data[rng.integers(len(data))] + rng.normal(
                    scale=0.1, size=data.shape[1:]
                )
                truth = db.ground_truth(query, 4)
                result = db.knn(query, 4)
                accs.append(result.accuracy_against(truth))
                prunes.append(result.pruning_power)
            rows.append(
                {
                    "channels": channels,
                    "accuracy": float(np.mean(accs)),
                    "pruning_power": float(np.mean(prunes)),
                }
            )
    publish_table("multivariate", "Extension — multivariate k-NN", rows)

    # combined lower bounds keep the search exact at every channel count
    for row in rows:
        assert row["accuracy"] == 1.0
        assert 0.0 < row["pruning_power"] <= 1.0

    data = collection(24, 3, n, seed=7)
    db = MultivariateDatabase(MultivariateReducer(lambda: SAPLAReducer(12)))
    db.ingest(data)
    benchmark(db.knn, data[0], 4)
