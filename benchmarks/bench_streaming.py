"""Extension — streaming SAPLA: throughput and quality vs offline.

The online variant keeps O(N) memory over an unbounded stream; this bench
measures its per-point cost and how much max deviation the online
constraint gives up against the offline three-stage pipeline on identical
data.
"""

import time

import numpy as np

from repro.core import SAPLA, StreamingSAPLA
from repro.metrics import max_deviation

from conftest import publish_table


def _measure_streaming(rng, rows):
    for n in (1000, 4000):
        series = rng.normal(size=n).cumsum()
        budget = 10

        stream = StreamingSAPLA(max_segments=budget)
        started = time.process_time()
        stream.extend(series)
        elapsed = time.process_time() - started
        online_dev = max_deviation(series, stream.reconstruct())

        offline = SAPLA(n_segments=budget).transform(series)
        offline_dev = max_deviation(series, offline.reconstruct())

        rows.append(
            {
                "n": n,
                "points_per_second": n / max(elapsed, 1e-9),
                "online_max_deviation": online_dev,
                "offline_max_deviation": offline_dev,
                "premium": online_dev / max(offline_dev, 1e-9),
            }
        )


def test_streaming_quality_and_throughput(benchmark, config, bench_report):
    rng = np.random.default_rng(5)
    rows = []
    with bench_report("streaming", rows=rows):
        _measure_streaming(rng, rows)
    publish_table("streaming", "Extension — streaming vs offline SAPLA", rows)

    for row in rows:
        # memory-bounded online segmentation pays at most a small premium
        assert row["premium"] <= 5.0
        assert row["points_per_second"] > 1000

    chunk = rng.normal(size=500).cumsum()

    def feed():
        s = StreamingSAPLA(max_segments=10)
        s.extend(chunk)
        return s.n_segments

    benchmark(feed)
