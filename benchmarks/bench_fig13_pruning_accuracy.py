"""Fig. 13 — pruning power (13a) and accuracy (13b), R-tree vs DBCH-tree.

Paper shape: the adaptive-length methods gain the most from the DBCH-tree
(their APCA-style MBRs overlap in the R-tree); equal-length methods behave
similarly under both indexes.
"""

import numpy as np

from repro.bench import summarise_pruning_accuracy
from repro.distance import make_suite
from repro.index import SeriesDatabase
from repro.reduction import SAPLAReducer

from conftest import publish_table

ADAPTIVE = ("SAPLA", "APLA", "APCA")
EQUAL = ("PLA", "PAA", "SAX")


def test_fig13_pruning_and_accuracy(benchmark, config, index_grid):
    rows = summarise_pruning_accuracy(index_grid)
    publish_table("fig13_pruning_accuracy", "Fig 13 — pruning power & accuracy", rows)
    by = {(r["method"], r["index"]): r for r in rows}

    # adaptive methods: DBCH accuracy at least matches the R-tree's
    for method in ADAPTIVE:
        assert by[(method, "dbch")]["accuracy"] >= by[(method, "rtree")]["accuracy"] - 0.05
    # equal-length methods change little between the two indexes
    for method in EQUAL:
        assert abs(
            by[(method, "dbch")]["pruning_power"] - by[(method, "rtree")]["pruning_power"]
        ) <= 0.3
    # every pruning power is a valid fraction
    for row in rows:
        assert 0.0 <= row["pruning_power"] <= 1.0
        assert 0.0 <= row["accuracy"] <= 1.0

    # benchmark kernel: one DBCH k-NN query
    dataset = next(config.datasets())
    db = SeriesDatabase(SAPLAReducer(config.coefficients[0]), index="dbch")
    db.ingest(dataset.data)
    benchmark(db.knn, dataset.queries[0], config.ks[0])
