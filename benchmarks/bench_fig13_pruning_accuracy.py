"""Fig. 13 — pruning power (13a) and accuracy (13b), R-tree vs DBCH-tree.

Paper shape: the adaptive-length methods gain the most from the DBCH-tree
(their APCA-style MBRs overlap in the R-tree); equal-length methods behave
similarly under both indexes.

The headline cell (SAPLA on the DBCH-tree) is additionally executed as an
experiment-service ``pruning`` trial and published through
:func:`conftest.publish_trial`, so its per-bound pruning counters land in
``fig13_pruning_accuracy.report.json`` and (when
``REPRO_EXPERIMENT_STORE`` is set) in the results store.
"""

from repro.bench import summarise_pruning_accuracy
from repro.experiments import EngineSpec, ReducerSpec, ScaleSpec, TrialSpec, run_trial
from repro.index import SeriesDatabase
from repro.kinds import IndexKind
from repro.reduction import SAPLAReducer

from conftest import publish_table

ADAPTIVE = ("SAPLA", "APLA", "APCA")
EQUAL = ("PLA", "PAA", "SAX")


def test_fig13_pruning_and_accuracy(benchmark, config, index_grid, publish_trial):
    rows = summarise_pruning_accuracy(index_grid)
    publish_table("fig13_pruning_accuracy", "Fig 13 — pruning power & accuracy", rows)
    by = {(r["method"], r["index"]): r for r in rows}

    # adaptive methods: DBCH accuracy at least matches the R-tree's
    for method in ADAPTIVE:
        assert by[(method, "dbch")]["accuracy"] >= by[(method, "rtree")]["accuracy"] - 0.05
    # equal-length methods change little between the two indexes
    for method in EQUAL:
        assert abs(
            by[(method, "dbch")]["pruning_power"] - by[(method, "rtree")]["pruning_power"]
        ) <= 0.3
    # every pruning power is a valid fraction
    for row in rows:
        assert 0.0 <= row["pruning_power"] <= 1.0
        assert 0.0 <= row["accuracy"] <= 1.0

    # the headline cell as a service trial: per-bound pruning ratios from obs
    dataset = next(config.datasets())
    n_series, length = dataset.data.shape
    trial = TrialSpec(
        index=0,
        workload="pruning",
        scale=ScaleSpec("fig13", length, n_series, min(len(dataset.queries), 8)),
        reducer=ReducerSpec("SAPLA", config.coefficients[0]),
        index_kind=IndexKind.DBCH,
        engine=EngineSpec(k=config.ks[0]),
        repeat=0,
        seed=13,
    )
    derived, report, elapsed = run_trial(trial)
    assert 0.0 <= derived["pruning_power"] <= 1.0
    assert 0.0 <= derived["accuracy"] <= 1.0
    assert "verified_ratio" in derived  # pruning counters were captured
    publish_trial("fig13_pruning_accuracy", trial, report, derived, elapsed)

    # benchmark kernel: one DBCH k-NN query
    db = SeriesDatabase(SAPLAReducer(config.coefficients[0]), index="dbch")
    db.ingest(dataset.data)
    benchmark(db.knn, dataset.queries[0], config.ks[0])
