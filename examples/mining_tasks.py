"""Time series mining on top of the reduced representations.

Runs the three subsequence-level tasks the paper's introduction motivates —
motif discovery, discord (anomaly) detection, and semantic segmentation —
over one synthetic signal, plus k-means clustering over a collection.

Run with ``python examples/mining_tasks.py``.
"""

import numpy as np

from repro.apps import (
    AnalogForecaster,
    detect_change_points,
    find_discord,
    find_motifs,
    kmeans_time_series,
)
from repro.reduction import SAPLAReducer


def build_signal(seed=11):
    """Sine carrier + two planted motifs + one anomaly + a regime change."""
    rng = np.random.default_rng(seed)
    n = 800
    series = np.sin(np.linspace(0, 16 * np.pi, n)) * 0.5 + rng.normal(scale=0.1, size=n)
    # plant two near-identical occurrences (the motif): same pattern AND the
    # same local values, so the pair is closer than any two carrier windows
    pattern = 4 * np.sin(np.linspace(0, 2 * np.pi, 50))
    occurrence = pattern + rng.normal(scale=0.02, size=50)
    series[100:150] = occurrence
    series[500:550] = occurrence + rng.normal(scale=0.02, size=50)
    series[300:330] += np.sin(np.linspace(0, 18 * np.pi, 30)) * 3  # anomaly
    series[650:] += 4.0  # regime change
    return series


def main():
    series = build_signal()
    print(f"Signal: {len(series)} points; planted motifs at 100/500, "
          "anomaly at 300, regime change at 650\n")

    motifs = find_motifs(series, window=50, stride=5, top_k=1)
    print(f"motif pair      : starts {motifs[0].start_a} and {motifs[0].start_b} "
          f"(distance {motifs[0].distance:.3f})")

    discord = find_discord(series, window=30, stride=5)
    print(f"top discord     : start {discord.start} "
          f"(1-NN distance {discord.nn_distance:.3f}, "
          f"{discord.n_verified} raw comparisons)")

    changes = detect_change_points(series, n_change_points=1)
    print(f"change point    : position {changes[0].position} "
          f"(score {changes[0].score:.2f})")

    # clustering a small collection: flat vs trending series
    rng = np.random.default_rng(12)
    collection = np.vstack(
        [
            rng.normal(scale=0.3, size=(8, 128)),
            np.linspace(0, 6, 128) + rng.normal(scale=0.3, size=(8, 128)),
        ]
    )
    result = kmeans_time_series(collection, k=2, reducer=SAPLAReducer(12))
    print(f"clustering      : labels {result.labels.tolist()} "
          f"(inertia {result.inertia:.1f}, {result.n_iterations} iterations)")

    # forecasting: predict the next 20 points of a periodic stream
    t = np.arange(700)
    periodic = np.sin(2 * np.pi * t / 70) + rng.normal(scale=0.05, size=700)
    forecaster = AnalogForecaster(window=70, horizon=20, k=3, stride=2)
    forecaster.fit(periodic[:-20])
    prediction = forecaster.forecast(periodic[-90:-20])
    rmse = float(np.sqrt(np.mean((prediction.values - periodic[-20:]) ** 2)))
    print(f"forecasting     : 20-step RMSE {rmse:.3f} "
          f"(analogs at {prediction.analog_starts})")


if __name__ == "__main__":
    main()
