"""The paper's worked example (Figs. 1, 5, 6, 8), stage by stage.

Reduces the 20-point series from the paper with every stage of SAPLA and
with the baselines at the same coefficient budget (M = 12), printing the
numbers the paper's figures report.

Run with ``python examples/worked_example.py``.
"""

import numpy as np

from repro.core import SAPLA, SeriesStats, initialize, move_endpoints, split_merge
from repro.core.segment import LinearSegmentation
from repro.metrics import max_deviation, sum_of_segment_deviations
from repro.reduction import APCA, APLA, PLA

# Fig. 5a's original series
SERIES = np.array(
    [7, 8, 20, 15, 18, 8, 8, 15, 10, 1, 4, 3, 3, 5, 4, 9, 2, 9, 10, 10], dtype=float
)
M = 12  # paper's coefficient budget -> N = 4 SAPLA segments
N = M // 3


def describe(label, segments):
    rep = LinearSegmentation(list(segments))
    triples = ", ".join(
        f"<{seg.a:.3g}, {seg.b:.3g}, {seg.end}>" for seg in rep
    )
    print(f"{label}")
    print(f"  segments ({rep.n_segments}): {triples}")
    print(f"  max deviation      : {max_deviation(SERIES, rep.reconstruct()):.5f}")
    print(f"  sum of seg. devs   : {sum_of_segment_deviations(SERIES, rep):.5f}")
    print()
    return rep


def main():
    print(f"Original series (n={len(SERIES)}): {SERIES.astype(int).tolist()}")
    print(f"Budget M = {M} coefficients -> N = {N} SAPLA segments\n")

    stats = SeriesStats(SERIES)

    seeds = initialize(stats, N)
    describe("Stage 1 - initialization (paper Fig. 5: 6 segments)", seeds)

    merged = split_merge(stats, seeds, N)
    describe(
        "Stage 2 - split & merge (paper Fig. 6: N = 4, max deviation 10.6061)", merged
    )

    moved = move_endpoints(stats, merged)
    describe(
        "Stage 3 - endpoint movement (paper Fig. 8: max deviation 9.27273)", moved
    )

    print("Full pipeline through the public API:")
    rep = SAPLA(n_coefficients=M).transform(SERIES)
    describe("  SAPLA(n_coefficients=12)", rep.segments)

    print("Baselines at the same budget (paper Fig. 1):")
    for reducer in (APLA(M), APCA(M), PLA(M)):
        r = reducer.transform(SERIES)
        print(
            f"  {reducer.name:<5} N={r.n_segments}  "
            f"max deviation = {max_deviation(SERIES, r.reconstruct()):.4f}  "
            f"sum = {sum_of_segment_deviations(SERIES, r):.4f}"
        )


if __name__ == "__main__":
    main()
