"""Anomaly localisation with adaptive segmentation.

A domain scenario from the paper's motivation: device telemetry carries a
short fault burst.  Reducing the signal with SAPLA concentrates segment
boundaries around structure; the segment whose max deviation explodes under
a *small* segment budget localises the anomaly — a cheap screening pass
before any heavyweight detector runs.

Run with ``python examples/anomaly_localization.py``.
"""

import numpy as np

from repro import SAPLA
from repro.metrics import segment_deviations


def make_telemetry(n=768, fault_at=500, seed=3):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 6 * np.pi, n)
    signal = 2.0 * np.sin(t / 3) + 0.05 * rng.normal(size=n)
    # a short high-frequency fault burst
    burst = slice(fault_at, fault_at + 24)
    signal[burst] += np.sin(np.linspace(0, 20 * np.pi, 24)) * 3.0
    return signal, burst


def main():
    signal, burst = make_telemetry()
    print(f"Telemetry: {len(signal)} points, injected fault at "
          f"[{burst.start}, {burst.stop})\n")

    sapla = SAPLA(n_coefficients=18)  # N = 6 segments for 768 points
    representation = sapla.transform(signal)
    deviations = segment_deviations(signal, representation)

    print(f"{'segment':>8} {'window':>14} {'length':>7} {'max deviation':>14}")
    for i, (seg, dev) in enumerate(zip(representation, deviations)):
        marker = "  <-- anomaly candidate" if dev == max(deviations) else ""
        print(f"{i:>8} [{seg.start:>5}, {seg.end:>5}] {seg.length:>7} {dev:>14.4f}{marker}")

    worst = representation[int(np.argmax(deviations))]
    # a fault can straddle a segment boundary, so localisation means the
    # worst segment *overlaps* the fault window
    hit = worst.start < burst.stop and burst.start <= worst.end
    print(f"\nworst segment window: [{worst.start}, {worst.end}]")
    print(f"fault overlapped by worst segment: {hit}")
    if not hit:
        raise SystemExit("anomaly not localised — unexpected for this scenario")


if __name__ == "__main__":
    main()
