"""1-NN time series classification through reduced representations.

The paper's motivating workload: classify unseen series by their nearest
neighbour, retrieved through a reduction method + index instead of raw
linear scans.  Compares SAPLA, APCA and PAA on accuracy and on how much of
the raw collection each retrieval had to touch.

Run with ``python examples/classification.py``.
"""

from repro.apps import KNNClassifier
from repro.data import load_labeled
from repro.reduction import APCA, PAA, SAPLAReducer


def main():
    dataset = load_labeled(
        "SwedishLeaf", n_classes=4, n_per_class=15, n_queries_per_class=5, length=256
    )
    print(
        f"Dataset {dataset.name} ({dataset.family}): {dataset.n_classes} classes, "
        f"{dataset.data.shape[0]} train / {dataset.queries.shape[0]} test, "
        f"length {dataset.length}\n"
    )

    header = f"{'method':<8} {'k':>3} {'accuracy':>9} {'mean pruning':>13}"
    print(header)
    print("-" * len(header))
    for reducer_cls in (SAPLAReducer, APCA, PAA):
        for k in (1, 3):
            report = KNNClassifier(reducer_cls(12), k=k, index="dbch").evaluate(dataset)
            print(
                f"{reducer_cls.name:<8} {k:>3} {report.accuracy:>9.2f} "
                f"{report.mean_pruning_power:>13.2f}"
            )
    print("\npruning = fraction of raw training series each query had to touch")


if __name__ == "__main__":
    main()
