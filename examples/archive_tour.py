"""Tour of the synthetic UCR-like archive: compression quality per family.

Loads one dataset per shape family, reduces each with SAPLA and APCA at the
same coefficient budget, and reports which signal shapes favour adaptive
linear segments over adaptive constants — the trade-off behind Table 1 and
Fig. 12a.

Run with ``python examples/archive_tour.py``.
"""

import numpy as np

from repro.data import UCRLikeArchive
from repro.metrics import max_deviation
from repro.reduction import APCA, SAPLAReducer


def main():
    archive = UCRLikeArchive(length=256, n_series=12, n_queries=0)
    budget = 12

    print(f"Archive: {len(archive)} datasets; showing one per family "
          f"(M = {budget} coefficients)\n")
    header = f"{'dataset':<24} {'family':<12} {'SAPLA dev':>10} {'APCA dev':>10}  winner"
    print(header)
    print("-" * len(header))

    wins = {"SAPLA": 0, "APCA": 0}
    for name in archive.one_per_family():
        dataset = archive.load(name)
        sapla = SAPLAReducer(budget)
        apca = APCA(budget)
        sapla_dev = float(np.mean([
            max_deviation(s, sapla.reconstruct(sapla.transform(s))) for s in dataset.data
        ]))
        apca_dev = float(np.mean([
            max_deviation(s, apca.reconstruct(apca.transform(s))) for s in dataset.data
        ]))
        winner = "SAPLA" if sapla_dev <= apca_dev else "APCA"
        wins[winner] += 1
        print(f"{name:<24} {dataset.family:<12} {sapla_dev:>10.4f} {apca_dev:>10.4f}  {winner}")

    print(f"\nfamily wins: SAPLA {wins['SAPLA']}, APCA {wins['APCA']}")
    print("(slopes pay off on trends and smooth shapes; constants on plateaus)")


if __name__ == "__main__":
    main()
