"""The lower-bounding distance measures side by side (paper Fig. 10).

Shows, for a pair of series, the ordering the paper's Fig. 10 illustrates:
Dist_LB is the guaranteed-but-loose lower bound, Dist_PAR the tight
partition-based measure, Dist_AE the close approximation that can overshoot
the true Euclidean distance.

Run with ``python examples/distance_measures.py``.
"""

import numpy as np

from repro.distance import dist_ae, dist_lb, dist_par, euclidean
from repro.reduction import SAPLAReducer


def main():
    reducer = SAPLAReducer(12)

    print(f"{'pair':>4} {'Dist':>8} {'Dist_LB':>8} {'Dist_PAR':>9} {'Dist_AE':>8}   ordering")
    print("-" * 60)
    ae_over = 0
    for seed in range(8):
        rng = np.random.default_rng(seed)
        q = rng.normal(size=128).cumsum()
        c = rng.normal(size=128).cumsum()
        rep_q, rep_c = reducer.transform(q), reducer.transform(c)
        true = euclidean(q, c)
        lb = dist_lb(q, rep_c)
        par = dist_par(rep_q, rep_c)
        ae = dist_ae(q, rep_c)
        ae_over += ae > true
        ok = "LB <= PAR <= Dist" if lb <= par <= true + 1e-9 else "(partition caveat)"
        print(f"{seed:>4} {true:>8.3f} {lb:>8.3f} {par:>9.3f} {ae:>8.3f}   {ok}")

    print(f"\nDist_AE exceeded the true distance on {ae_over}/8 random pairs;")
    print("its guarantee genuinely breaks when query and data nearly coincide:")
    c = np.random.default_rng(42).normal(size=128).cumsum()
    rep_c = reducer.transform(c)
    print(f"  query == series : Dist = {euclidean(c, c):.3f}, "
          f"Dist_AE = {dist_ae(c, rep_c):.3f} (> Dist!), "
          f"Dist_LB = {dist_lb(c, rep_c):.3f}")
    print("\nDist_LB never exceeds Dist; Dist_PAR is the tighter of the two —")
    print("exactly the trade-off the DBCH-tree is built on.")


if __name__ == "__main__":
    main()
