"""Online compression of a sensor stream with StreamingSAPLA.

Feeds an unbounded telemetry stream through the bounded-memory online
SAPLA, periodically reporting the live compression state, and compares the
final snapshot against the offline pipeline run on the same data.

Run with ``python examples/streaming_compression.py``.
"""

import numpy as np

from repro.core import SAPLA, StreamingSAPLA
from repro.metrics import max_deviation


def stream_chunks(total=4000, chunk=500, seed=21):
    """A drifting, regime-switching telemetry stream, one chunk at a time."""
    rng = np.random.default_rng(seed)
    level = 0.0
    for _ in range(total // chunk):
        drift = rng.normal(scale=0.02)
        regime = rng.choice(["calm", "ramp", "burst"])
        t = np.arange(chunk, dtype=float)
        if regime == "calm":
            values = level + rng.normal(scale=0.1, size=chunk)
        elif regime == "ramp":
            values = level + drift * 20 * t / chunk + rng.normal(scale=0.1, size=chunk)
        else:
            values = level + np.sin(t / 4) * 2 + rng.normal(scale=0.1, size=chunk)
        level = values[-1]
        yield values


def main():
    budget = 12  # segments kept in memory, regardless of stream length
    stream = StreamingSAPLA(max_segments=budget)
    history = []

    print(f"Streaming with a budget of {budget} segments\n")
    print(f"{'points seen':>12} {'segments':>9} {'max deviation':>14} {'compression':>12}")
    for chunk in stream_chunks():
        stream.extend(chunk)
        history.append(chunk)
        seen = np.concatenate(history)
        rep = stream.representation
        dev = max_deviation(seen, rep.reconstruct())
        ratio = rep.n_coefficients / len(seen)
        print(f"{stream.n_points:>12} {rep.n_segments:>9} {dev:>14.4f} {ratio:>12.4%}")

    series = np.concatenate(history)
    offline = SAPLA(n_segments=budget).transform(series)
    online_dev = max_deviation(series, stream.reconstruct())
    offline_dev = max_deviation(series, offline.reconstruct())
    print(f"\nfinal online  max deviation : {online_dev:.4f}")
    print(f"offline (full-data) SAPLA   : {offline_dev:.4f}")
    print(f"online premium              : {online_dev / max(offline_dev, 1e-9):.2f}x")
    print("\nthe stream never kept more than "
          f"{budget} segments (~{3 * budget} numbers) in memory for "
          f"{len(series)} points.")


if __name__ == "__main__":
    main()
