"""Similarity search over a UCR-like dataset with the DBCH-tree.

Builds three search paths over the same collection — linear scan, R-tree
with APCA-style MBRs, and the DBCH-tree with Dist_PAR — and compares their
answers, pruning power, and CPU time for k-NN queries.

Run with ``python examples/similarity_search.py``.
"""

import time

from repro.data import UCRLikeArchive
from repro.index import SeriesDatabase
from repro.reduction import SAPLAReducer


def main():
    archive = UCRLikeArchive(length=256, n_series=80, n_queries=5)
    dataset = archive.load("ECG200")
    print(f"Dataset {dataset.name} (family {dataset.family}): "
          f"{dataset.data.shape[0]} series of length {dataset.length}\n")

    k = 8
    databases = {}
    for index_kind in ("rtree", "dbch"):
        db = SeriesDatabase(SAPLAReducer(12), index=index_kind)
        started = time.process_time()
        db.ingest(dataset.data)
        build = time.process_time() - started
        counts = db.tree.node_counts()
        print(
            f"{index_kind:>5}: built in {build * 1e3:.1f} ms CPU  "
            f"({counts['total']} nodes, height {db.tree.height})"
        )
        databases[index_kind] = db
    print()

    header = f"{'query':>5} {'index':>6} {'pruning':>8} {'accuracy':>9} {'cpu ms':>8}  neighbours"
    print(header)
    print("-" * len(header))
    for qi, query in enumerate(dataset.queries):
        truth = databases["dbch"].ground_truth(query, k)
        for index_kind, db in databases.items():
            started = time.process_time()
            result = db.knn(query, k)
            elapsed = (time.process_time() - started) * 1e3
            print(
                f"{qi:>5} {index_kind:>6} {result.pruning_power:>8.2f} "
                f"{result.accuracy_against(truth):>9.2f} {elapsed:>8.2f}  "
                f"{result.ids[:5]}..."
            )
    print("\npruning = fraction of raw series verified (lower is better);")
    print("accuracy = overlap with the exact k-NN set (Eq. 15).")


if __name__ == "__main__":
    main()
