"""Quickstart: reduce a time series with SAPLA, reconstruct, and compare.

Run with ``python examples/quickstart.py``.
"""

import numpy as np

from repro import SAPLA
from repro.metrics import max_deviation
from repro.reduction import APCA, PAA, PLA


def ascii_plot(series, recon, width=72, height=14):
    """A tiny terminal plot: '.' original, 'x' reconstruction, '*' both."""
    n = len(series)
    cols = np.linspace(0, n - 1, width).astype(int)
    lo = min(series.min(), recon.min())
    hi = max(series.max(), recon.max())
    scale = (height - 1) / (hi - lo if hi > lo else 1.0)
    grid = [[" "] * width for _ in range(height)]
    for j, t in enumerate(cols):
        row_s = height - 1 - int((series[t] - lo) * scale)
        row_r = height - 1 - int((recon[t] - lo) * scale)
        grid[row_s][j] = "."
        grid[row_r][j] = "*" if row_r == row_s else "x"
    return "\n".join("".join(row) for row in grid)


def main():
    # a bursty series: smooth trend + one localised event + noise
    rng = np.random.default_rng(7)
    n = 512
    t = np.linspace(0, 4 * np.pi, n)
    series = np.sin(t) + 0.1 * rng.normal(size=n)
    series[200:230] += 4.0 * np.exp(-0.5 * ((np.arange(30) - 15) / 5.0) ** 2)

    # SAPLA with a budget of M = 18 coefficients -> N = 6 adaptive segments
    sapla = SAPLA(n_coefficients=18)
    representation = sapla.transform(series)
    recon = representation.reconstruct()

    print("SAPLA quickstart")
    print(f"  series length        : {n}")
    print(f"  segments (N)         : {representation.n_segments}")
    print(f"  segment endpoints    : {representation.right_endpoints}")
    print(f"  max deviation        : {max_deviation(series, recon):.4f}")
    print()
    print(ascii_plot(series, recon))
    print()

    # the same coefficient budget spent by the baselines
    print("Same budget (M = 18) through the baselines:")
    for reducer in (APCA(18), PLA(18), PAA(18)):
        print(
            f"  {reducer.name:<5} N={reducer.n_segments:<3} "
            f"max deviation = {reducer.max_deviation(series):.4f}"
        )


if __name__ == "__main__":
    main()
